#pragma once
// The shared federated round engine (see docs/ENGINE.md).
//
// Every runner used to hand-roll the same loop: select clients, dispatch
// models, check availability, adapt to the device's capacity, train locally,
// upload, aggregate, evaluate. RoundEngine owns that skeleton once and
// delegates the algorithm-specific decisions to a RoundPolicy:
//
//   init_global -> [per round] begin_round
//                  -> [per slot, sequential]  select -> adapt
//                     (engine: dispatch accounting, availability check,
//                      failure bookkeeping, on_* feedback hooks)
//                  -> [parallel]              execute (thread pool)
//                  -> [sequential, slot order] commit
//                  -> aggregate -> end_round -> evaluate (when due)
//
// Determinism contract: all policy hooks except execute() run on the engine
// thread, strictly sequentially, in slot order. execute() runs on a worker
// thread with a private Rng derived from (seed, round, client) — never from
// the round RNG — so the RunResult is bit-identical for any AFL_THREADS.
// execute() must therefore be const and touch no mutable shared state
// (global parameters are frozen between aggregate() calls, so reading them
// is safe).
//
// Communication accounting rule (uniform across algorithms): every slot that
// selects a client records its dispatch *before* the availability check; a
// device that never responds, or that cannot train even the smallest
// adapted/offered submodel, therefore counts as pure waste. Returns are
// recorded only for slots whose training committed.
//
// Simulated transport (src/net/, docs/NET.md): when a channel is configured
// the engine ships each dispatch and upload as a codec-encoded wire frame
// through a deterministic lossy channel with retry/backoff. Frames lost after
// all retries, and clients whose round exceeds the deadline (stragglers), are
// excluded from aggregation exactly like availability failures. All transport
// randomness comes from streams derived per (seed, round, client), so results
// stay bit-identical at any AFL_THREADS; with no channel configured the
// transport is an identity path and runs are byte-identical to a build
// without it.

#include <cstddef>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "engine/run.hpp"
#include "fl/local_train.hpp"
#include "net/transport.hpp"
#include "nn/checkpoint.hpp"
#include "nn/param.hpp"
#include "pop/population.hpp"
#include "sim/device.hpp"
#include "util/rng.hpp"

namespace afl {

/// One client slot's plan, filled left-to-right by the engine and the policy
/// hooks (select fills client/sent_*, the engine fills capacity, adapt fills
/// the rest).
struct ClientSlot {
  std::size_t round = 0;
  std::size_t slot = 0;
  std::size_t client = 0;
  /// Device capacity drawn for this slot (SIZE_MAX when the engine has no
  /// device fleet, e.g. the idealized All-Large baseline).
  std::size_t capacity = 0;
  /// Policy-specific identifier of the dispatched model (pool entry index,
  /// level index, ...).
  std::size_t sent_index = 0;
  std::size_t params_sent = 0;
  /// Set by adapt(): whether the device can train what it received.
  bool trainable = false;
  /// Policy-specific identifier of the model coming back (== sent_index when
  /// the device did not prune).
  std::size_t back_index = 0;
  std::size_t params_back = 0;
  /// Decoded downlink payload, set by the engine's transport when a channel
  /// is configured and the policy exposes dispatch_params(). The tensors the
  /// device actually received — codec-quantized when the codec is lossy.
  /// Null on the identity path; execute() falls back to reading the global
  /// parameters directly.
  const ParamSet* rx = nullptr;
};

/// What one client's local training produced (execute() return value).
struct TrainOutcome {
  ParamSet params;           // trained parameters, as exported by the model
  std::size_t samples = 0;   // client dataset size (aggregation weight)
  LocalTrainResult stats;
};

/// Per-algorithm policy hooks. Every hook except execute() runs sequentially
/// on the engine thread; see the determinism contract above.
class RoundPolicy {
 public:
  virtual ~RoundPolicy() = default;

  virtual std::string algorithm_name() const = 0;

  /// Builds / seeds the global model; first consumer of the run's root RNG.
  virtual void init_global(Rng& rng) = 0;

  /// Round setup: cohort sampling, clearing per-round scratch state.
  virtual void begin_round(std::size_t round, Rng& rng) {
    (void)round;
    (void)rng;
  }

  /// Picks the slot's client (and, for pool-based policies, the model to
  /// ship: sent_index + params_sent). May draw from `rng` and read policy
  /// state. Returning false ends the round's selection early.
  virtual bool select(ClientSlot& slot, Rng& rng) = 0;

  /// Device-side resolution given slot.capacity: what the server actually
  /// shipped (params_sent, when it depends on the capacity match) and
  /// whether/what the device can train (trainable, back_index, params_back).
  virtual void adapt(ClientSlot& slot) = 0;

  /// Feedback hooks (RL table updates etc.), called in slot order.
  virtual void on_no_response(const ClientSlot& slot) { (void)slot; }
  virtual void on_adapt_failure(const ClientSlot& slot) { (void)slot; }
  /// Called when a slot is accepted for training, before execute().
  virtual void on_accepted(const ClientSlot& slot) { (void)slot; }
  /// Called when the simulated transport loses the slot's frame (all
  /// retransmissions exhausted) or its update misses the round deadline.
  /// The client is excluded from aggregation like an availability failure.
  virtual void on_transport_failure(const ClientSlot& slot) { (void)slot; }

  /// The parameter payload the server ships for this slot (the dispatched
  /// submodel, sized sent_index). Only called when a transport channel is
  /// configured; runs on the engine thread after adapt(). Policies that
  /// return a non-empty set get real byte accounting and codec quantization
  /// of what the client trains on (via slot.rx); the default (empty) keeps
  /// the transport in size-only simulation driven by params_sent.
  virtual ParamSet dispatch_params(const ClientSlot& slot) const {
    (void)slot;
    return {};
  }

  /// The parameter set execute() imported for this slot — what the trained
  /// update is measured against when a sparsifying uplink codec is active
  /// (src/compress/, docs/COMPRESSION.md): the uplink ships
  /// top-k(trained - upload_reference() + residual). Must return exactly
  /// what execute() read (slot.rx when present, else the policy's current
  /// global split for the slot), with matching names and shapes. The default
  /// throws: silently compressing against the wrong reference would corrupt
  /// training, so policies must opt in explicitly.
  virtual ParamSet upload_reference(const ClientSlot& slot) const {
    (void)slot;
    throw std::runtime_error(
        algorithm_name() +
        " does not implement upload_reference(); sparse uplink codecs "
        "(AFL_NET_CODEC=topk*) need the policy to expose the imported "
        "parameter set");
  }

  /// One client's local work: build -> import -> train -> export. Runs on a
  /// worker thread; must be effectively const (no shared-state mutation) and
  /// must draw randomness only from `rng`.
  virtual TrainOutcome execute(const ClientSlot& slot, Rng& rng) const = 0;

  /// Stores the trained update for aggregation. Slot order.
  virtual void commit(const ClientSlot& slot, TrainOutcome outcome) = 0;

  /// Folds all committed updates into the global model.
  virtual void aggregate(std::size_t round) = 0;

  /// Round-end telemetry (selector entropy etc.).
  virtual void end_round(std::size_t round, RoundTelemetry& telemetry) {
    (void)round;
    (void)telemetry;
  }

  /// Evaluates the global model: fills result.level_acc and
  /// result.final_full_acc / final_avg_acc. The engine appends the curve
  /// point (with the comm-waste columns) afterwards.
  virtual void evaluate(std::size_t round, RunResult& result) = 0;

  /// Engine snapshot/resume (docs/POPULATION.md): serializes the policy's
  /// own state (global model, RL tables, ...) beyond what the engine
  /// captures, and restores it on resume. The layout is policy-private but
  /// must be deterministic (sorted containers) so two snapshots of identical
  /// logical state are byte-identical. restore_state() is called after
  /// init_global(), so structure exists and only values need rewinding.
  /// The defaults throw: a policy that silently snapshots nothing would
  /// resume from a round-0 model and diverge without any error. Only called
  /// when a snapshot/resume plan is active.
  virtual void snapshot_state(SnapshotWriter& w) const {
    (void)w;
    throw std::runtime_error(algorithm_name() +
                             " does not implement snapshot_state()");
  }
  virtual void restore_state(SnapshotReader& r) {
    (void)r;
    throw std::runtime_error(algorithm_name() +
                             " does not implement restore_state()");
  }
};

/// Extension of RoundPolicy consumed by the async engine (src/async/,
/// docs/ASYNC.md). The synchronous hooks keep their exact semantics — the
/// algorithm's selector, RL feedback, pruning, and aggregation code runs
/// unchanged — but the async engine's continuous dispatch needs three extra
/// seams: a run-scoped (rather than round-scoped) busy set, because clients
/// stay in flight across aggregation flushes; weighted commits, because
/// staleness discounts the update's aggregation weight; and a begin hook
/// replacing the per-round cohort reset. begin_round()/select() are still
/// called per dispatch so per-round policy state (e.g. RL reward windows)
/// keeps working; the engine maps one "round" to one dispatch.
class AsyncRoundPolicy : public RoundPolicy {
 public:
  /// Called once before the first dispatch, instead of per-round cohort
  /// resets driving the busy set.
  virtual void begin_async(std::size_t num_clients) = 0;

  /// Marks a client in flight (selected, awaiting its update or failure) or
  /// free again. select() must never pick a busy client.
  virtual void set_client_busy(std::size_t client, bool busy) = 0;

  /// Stores a trained update whose aggregation weight is scaled by
  /// `weight_scale` = 1 / (1 + staleness)^alpha. commit() remains the
  /// synchronous path (weight_scale == 1).
  virtual void commit_weighted(const ClientSlot& slot, TrainOutcome outcome,
                               double weight_scale) = 0;
};

/// Extension consumed by the hierarchical multi-aggregator engine (src/hier/,
/// docs/HIERARCHY.md). The hierarchical engine plans rounds through the same
/// sequential hooks (engine/plan.hpp) but owns aggregation itself: shard-local
/// ShardAggregators fold the updates and a root merger commits the new global,
/// so commit()/aggregate() are never called. That requires direct access to
/// the policy's global parameter set plus a payload split against an explicit
/// (possibly shard-local) model.
class HierRoundPolicy : public AsyncRoundPolicy {
 public:
  /// The policy's current global parameter set (frozen between syncs).
  virtual const ParamSet& hier_global() const = 0;

  /// Replaces the global parameter set (the root merger's commit).
  virtual void hier_set_global(ParamSet global) = 0;

  /// The downlink payload for `slot` split from an explicit model — the
  /// hierarchical analogue of dispatch_params(), used when shard models
  /// diverge from the root global between syncs (sync_every > 1).
  virtual ParamSet hier_dispatch_params(const ClientSlot& slot,
                                        const ParamSet& model) const = 0;
};

/// Drives a RoundPolicy through config.rounds rounds. `devices` may be null
/// for idealized baselines (always responsive, unlimited capacity); otherwise
/// it must hold one profile per client and outlive the engine.
class RoundEngine {
 public:
  /// `population` (optional, not owned) supplies churn telemetry and
  /// per-client channel profiles (docs/POPULATION.md); the churn schedules
  /// themselves reach the engine through the devices' presence pointers.
  RoundEngine(const FlRunConfig& config, const std::vector<DeviceSim>* devices,
              const pop::Population* population = nullptr);

  RunResult run(RoundPolicy& policy);

  /// Worker threads the engine resolved (config.threads or AFL_THREADS).
  std::size_t threads() const { return threads_; }

  /// The resolved simulated transport (config.net or the AFL_NET_*
  /// environment; disabled by default — the identity path).
  const net::Transport& transport() const { return transport_; }

 private:
  FlRunConfig config_;
  const std::vector<DeviceSim>* devices_;
  const pop::Population* population_;
  std::size_t threads_;
  net::Transport transport_;
};

}  // namespace afl
