#pragma once
// Dispatch-lifecycle causal tracing (afl.trace.v2, docs/OBSERVABILITY.md).
//
// Every dispatch of a time-modeling run gets a stable dispatch_id whose
// virtual-clock phases — select → downlink → compute → uplink(+retries/
// backoff) → buffer_wait → commit, or a terminal drop — are emitted as
// structured `lifecycle` records in the AFL_TRACE_JSONL stream. All three
// engines (sync RoundEngine, src/async/ event engine, src/hier/ edge/root
// pipeline) feed one LifecycleTracker per run:
//
//   - sync/hier assign sequential ids during the sequential planning pass,
//     so ids are invariant to AFL_THREADS and the shard count;
//   - the async engine reuses its dispatch counter (slot.round) as the id.
//
// Phase intervals live on the run's virtual clock (run-global simulated
// seconds), so `afl-insight critical-path` can reconstruct the causal DAG
// and `afl-insight export-chrome` can lay tracks out on one timebase.
// Records are buffered per dispatch and emitted in one burst at the
// dispatch's terminal event (failure) or its window commit, always from
// sequential engine code in deterministic order — lifecycle output is
// byte-identical (modulo the wall-clock ts_ms envelope) across thread and
// shard counts.
//
// A tracker is only active when the run models time (transport enabled or
// async engine): transportless sync traces stay byte-identical to v1
// builds. When active it also feeds afl.lifecycle.<phase>.seconds
// histograms and an online critical-path blame summary published to the
// /status endpoint.

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace afl::engine {

/// Phase names of the dispatch lifecycle, in causal order.
inline constexpr const char* kPhaseSelect = "select";
inline constexpr const char* kPhaseDownlink = "downlink";
inline constexpr const char* kPhaseCompute = "compute";
inline constexpr const char* kPhaseUplink = "uplink";
inline constexpr const char* kPhaseBufferWait = "buffer_wait";
inline constexpr const char* kPhaseCommit = "commit";
inline constexpr const char* kPhaseDrop = "drop";

/// Online critical-path blame totals in simulated seconds: after each window
/// commit the tracker adds the phase durations of the dispatch that
/// determined the commit instant (the last arrival). A cheap running
/// approximation of `afl-insight critical-path`, published to /status.
struct LifecycleBlame {
  double downlink = 0.0;     // wire time, backoff excluded
  double compute = 0.0;
  double uplink = 0.0;       // wire time, backoff excluded
  double backoff = 0.0;      // retry/re-upload backoff, both directions
  double buffer_wait = 0.0;  // arrival -> commit barrier / buffer flush
  bool valid = false;        // true once any window committed
};

class LifecycleTracker {
 public:
  /// `active` = the run models virtual time; inactive trackers no-op on
  /// every call (one branch), keeping transportless runs untouched.
  explicit LifecycleTracker(bool active) : active_(active) {}
  LifecycleTracker(const LifecycleTracker&) = delete;
  LifecycleTracker& operator=(const LifecycleTracker&) = delete;

  bool active() const { return active_; }

  /// Next sequential dispatch id (1-based). Sync/hier call this during the
  /// sequential planning pass; the async engine brings its own counter.
  std::size_t next_id() { return ++last_id_; }

  /// Snapshot/resume (docs/POPULATION.md): the id counter survives a resume
  /// so post-resume dispatches continue the sequence instead of reusing ids.
  std::size_t last_id() const { return last_id_; }
  void set_last_id(std::size_t id) { last_id_ = id; }

  /// Opens a dispatch: records the zero-length select instant at `t_select`
  /// and the identity tags every later record of this dispatch carries.
  /// `version` is the global-model version the dispatch was split from.
  void begin(std::size_t id, std::size_t round, std::size_t client,
             double t_select, int shard = -1, long long version = -1);

  /// Appends a phase interval [t0, t1]. `attempts`/`backoff_s`/`bytes`
  /// annotate transfer phases (0 omits the column).
  void phase(std::size_t id, const char* name, double t0, double t1,
             std::size_t attempts = 0, double backoff_s = 0.0,
             std::size_t bytes = 0);

  /// Terminal failure: appends a zero-length drop record tagged `outcome`
  /// (no_response, adapt_failed, lost_downlink, lost_uplink, deadline,
  /// stale) at `t_end` and emits the dispatch's buffered records now.
  void drop(std::size_t id, const char* outcome, double t_end);

  /// Marks the dispatch's update buffered at the aggregator at `t_arrival`;
  /// it rides the buffer until the owning commit_window().
  void arrived(std::size_t id, double t_arrival);

  /// Commits every arrived dispatch (of `commit_shard`, or all when -1) at
  /// the window's commit instant: appends buffer_wait [arrival, t_commit]
  /// and an outcome-ok commit record tagged `commit_version`, emits the
  /// dispatches in id order, and folds the window's determining dispatch
  /// (latest arrival, ties to the highest id) into the blame summary.
  void commit_window(double t_commit, int commit_shard = -1,
                     long long commit_version = -1);

  /// Hierarchical root-barrier records (dispatch-less, level-tagged): the
  /// idle wait of one edge clock up to the sync barrier, and the merge
  /// instant itself.
  void root_wait(std::size_t round, int shard, double t0, double t1);
  void root_merge(std::size_t round, double t);

  const LifecycleBlame& blame() const { return blame_; }

 private:
  struct PhaseRec {
    const char* name;
    double t0 = 0.0;
    double t1 = 0.0;
    std::size_t attempts = 0;
    double backoff_s = 0.0;
    std::size_t bytes = 0;
  };
  struct DispatchRec {
    std::size_t round = 0;
    std::size_t client = 0;
    int shard = -1;
    long long version = -1;
    double arrival = -1.0;  // >= 0 once buffered at the aggregator
    std::vector<PhaseRec> phases;
  };

  void emit(std::size_t id, const DispatchRec& rec, const char* outcome,
            long long commit_version);
  void record_histograms(const DispatchRec& rec);

  bool active_;
  std::size_t last_id_ = 0;
  std::map<std::size_t, DispatchRec> open_;  // id order = emission order
  DispatchRec critical_rec_;  // window-determining dispatch, kept past erase
  LifecycleBlame blame_;
};

}  // namespace afl::engine
