#include "engine/plan.hpp"

#include <stdexcept>
#include <string>

#include "engine/telemetry.hpp"
#include "obs/metrics.hpp"
#include "obs/prof/prof.hpp"

namespace afl::engine {

RoundPlan plan_round(RoundPolicy& policy, const FlRunConfig& config,
                     const std::vector<DeviceSim>* devices,
                     const net::Transport& transport, std::size_t round,
                     Rng& rng, RunResult& result, RoundTelemetry& telemetry,
                     const DispatchPayloadFn& payload,
                     const ShardOfFn& shard_of, LifecycleTracker* lifecycle,
                     const TimeBaseFn& time_base, long long version) {
  RoundPlan plan;
  plan.work.reserve(config.clients_per_round);
  const auto shard_tag = [&](const ClientSlot& s) {
    return shard_of ? shard_of(s.client) : -1;
  };
  const bool lc_on = lifecycle != nullptr && lifecycle->active();
  for (std::size_t slot = 0; slot < config.clients_per_round; ++slot) {
    ClientSlot s;
    s.round = round;
    s.slot = slot;
    {
      AFL_PROF_SPAN("engine.select");
      if (!policy.select(s, rng)) break;  // no client available this round
      if (devices) {
        if (s.client >= devices->size()) {
          throw std::logic_error("RoundEngine: policy selected client " +
                                 std::to_string(s.client) + " outside the fleet");
        }
        s.capacity = (*devices)[s.client].capacity(rng);
      } else {
        s.capacity = static_cast<std::size_t>(-1);
      }
    }
    {
      AFL_PROF_SPAN("engine.adapt");
      policy.adapt(s);
    }
    // Unified accounting: the dispatch is on the wire before the server
    // learns anything about the device, so it is recorded up front and
    // becomes pure waste on no-response / no-fit.
    result.comm.record_dispatch(s.params_sent);
    const double lc_base =
        lc_on && time_base ? time_base(s.client) : 0.0;
    std::size_t lc_id = 0;
    if (lc_on) {
      lc_id = lifecycle->next_id();
      lifecycle->begin(lc_id, round, s.client, lc_base, shard_tag(s), version);
    }
    if (devices) {
      // Population churn (src/pop/, docs/POPULATION.md): a departed or dark
      // client is dispatched to (the server cannot know) but never replies.
      // No RNG draw happens for non-present clients, so enabling churn never
      // shifts the streams of the clients that are present.
      const PresenceSchedule::State presence =
          (*devices)[s.client].presence_state(round);
      if (presence != PresenceSchedule::State::kPresent) {
        const char* outcome = presence == PresenceSchedule::State::kAbsent
                                  ? "departed"
                                  : "went_dark";
        if (presence == PresenceSchedule::State::kAbsent) {
          plan.departed.push_back(s.client);
        }
        ++result.failed_trainings;
        telemetry.client_failed();
        trace_dispatch_failure(s, outcome, -1.0, shard_tag(s));
        if (lc_on) lifecycle->drop(lc_id, outcome, lc_base);
        policy.on_no_response(s);
        continue;
      }
    }
    if (devices && !(*devices)[s.client].responds(rng)) {
      ++result.failed_trainings;
      telemetry.client_failed();
      trace_dispatch_failure(s, "no_response", -1.0, shard_tag(s));
      if (lc_on) lifecycle->drop(lc_id, "no_response", lc_base);
      policy.on_no_response(s);
      continue;
    }
    if (!s.trainable) {
      ++result.failed_trainings;
      telemetry.client_failed();
      trace_dispatch_failure(s, "adapt_failed", -1.0, shard_tag(s));
      if (lc_on) lifecycle->drop(lc_id, "adapt_failed", lc_base);
      policy.on_adapt_failure(s);
      continue;
    }
    if (transport.enabled()) {
      // Downlink: the dispatched submodel crosses the simulated channel.
      // Lost frames (all retransmissions exhausted) exclude the client this
      // round exactly like an availability failure.
      net::Transport::Session sess = transport.session(round, s.client);
      sess.set_lifecycle_tags(lc_on ? static_cast<long long>(lc_id) : -1,
                              shard_tag(s), version);
      net::Delivery down = transport.send(
          sess, net::FrameKind::kDispatch,
          payload ? payload(s) : policy.dispatch_params(s), s.params_sent);
      record_transfer(result.comm, down.transfer, /*uplink=*/false);
      if (lc_on) {
        lifecycle->phase(lc_id, kPhaseDownlink, lc_base,
                         lc_base + sess.elapsed_seconds(),
                         down.transfer.attempts, down.transfer.backoff_seconds,
                         down.transfer.bytes);
      }
      if (!down.transfer.delivered) {
        ++result.failed_trainings;
        result.comm.record_drop();
        obs::metrics().counter("afl.net.drops").inc();
        telemetry.client_failed();
        trace_dispatch_failure(s, "lost_downlink", -1.0, shard_tag(s));
        if (lc_on) {
          lifecycle->drop(lc_id, "lost_downlink",
                          lc_base + sess.elapsed_seconds());
        }
        policy.on_transport_failure(s);
        plan.failed_downlink_seconds.emplace_back(s.client,
                                                  sess.elapsed_seconds());
        continue;
      }
      if (!down.params.empty()) {
        plan.rx_store.push_back(
            std::make_unique<ParamSet>(std::move(down.params)));
        s.rx = plan.rx_store.back().get();
      }
      plan.sessions.push_back(sess);
      plan.down_bytes.push_back(down.transfer.bytes);
    }
    policy.on_accepted(s);
    plan.work.push_back(s);
  }
  return plan;
}

}  // namespace afl::engine
