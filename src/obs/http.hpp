#pragma once
// Minimal embedded HTTP/1.1 server for live run monitoring. POSIX sockets,
// one background accept thread that serves requests serially (requests are
// tiny GETs, responses are rendered in-memory), loopback-only bind, bounded
// request size, per-connection timeouts, clean shutdown via a self-pipe.
//
// The process-wide default server is enabled by AFL_HTTP_PORT (0 picks an
// ephemeral port) and exposes:
//   /metrics       Prometheus text exposition of the metrics registry
//   /metrics.json  the same registry as one JSON snapshot object
//   /healthz       liveness probe ("ok")
//   /status        live run snapshot published by the RoundEngine
// With AFL_HTTP_PORT unset nothing listens and no socket is ever opened.

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <thread>

namespace afl::obs {

class HttpServer {
 public:
  struct Response {
    int status = 200;
    std::string content_type = "text/plain; charset=utf-8";
    std::string body;
  };
  using Handler = std::function<Response()>;

  HttpServer() = default;
  ~HttpServer();
  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Registers `handler` for exact-match GET/HEAD requests on `path`.
  /// Must be called before start().
  void handle(std::string path, Handler handler);

  /// Binds 127.0.0.1:`port` (0 = ephemeral) and spawns the accept thread.
  /// Returns false (with a stderr warning) when the socket cannot be set up.
  bool start(std::uint16_t port);

  /// The actually bound port (resolves port 0), or 0 when not running.
  std::uint16_t port() const { return port_; }

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Wakes the accept thread, joins it, and closes every fd. Idempotent.
  void stop();

 private:
  void serve_loop();
  void handle_connection(int fd);

  std::map<std::string, Handler> handlers_;
  std::thread thread_;
  int listen_fd_ = -1;
  int wake_fds_[2] = {-1, -1};
  std::uint16_t port_ = 0;
  std::atomic<bool> running_{false};
};

/// Starts the process-wide monitoring server on first call when AFL_HTTP_PORT
/// is set (idempotent; later calls return the cached outcome). The server is
/// stopped via atexit so the accept thread never outlives main(). Returns
/// true when a server is serving.
bool ensure_default_http_server();

/// Port of the default server, or 0 when it is not running.
std::uint16_t default_http_port();

}  // namespace afl::obs
