#include "obs/critpath.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "obs/json.hpp"

namespace afl::obs {
namespace {

/// Per-dispatch chain assembled from the record stream.
struct Chain {
  long long dispatch = -1;
  long long client = -1;
  int shard = -1;
  std::vector<const LifecycleRecord*> phases;  // sorted by (t0, t1)
  double start = 0.0;  // earliest phase t0 (the select instant)
  double end = 0.0;    // latest phase t1

  /// Latest instant actual work (not barrier waiting) ended at or before
  /// `cap` — the arrival-order key that picks the causally-determining
  /// dispatch at a commit barrier.
  double work_end(double cap, double eps) const {
    double best = start;
    for (const LifecycleRecord* p : phases) {
      if (p->t1 > cap + eps) continue;
      if (p->phase == "buffer_wait" || p->phase == "commit") continue;
      best = std::max(best, p->t1);
    }
    return best;
  }
  double reach(double cap, double eps) const {
    double best = start;
    for (const LifecycleRecord* p : phases) {
      if (p->t1 <= cap + eps) best = std::max(best, p->t1);
    }
    return best;
  }
};

bool is_transfer(const std::string& phase) {
  return phase == "downlink" || phase == "uplink";
}

}  // namespace

std::optional<LifecycleRecord> parse_lifecycle(
    const std::map<std::string, std::string>& fields) {
  auto kind = fields.find("kind");
  if (kind == fields.end() || json_raw_string(kind->second) != "lifecycle") {
    return std::nullopt;
  }
  LifecycleRecord rec;
  const auto num = [&](const char* key, double fallback) {
    auto it = fields.find(key);
    return it == fields.end() ? fallback : json_raw_number(it->second, fallback);
  };
  const auto str = [&](const char* key) {
    auto it = fields.find(key);
    return it == fields.end() ? std::string()
                              : json_raw_string(it->second);
  };
  rec.dispatch = static_cast<long long>(num("dispatch", -1));
  rec.round = static_cast<long long>(num("round", -1));
  rec.client = static_cast<long long>(num("client", -1));
  rec.phase = str("phase");
  rec.t0 = num("t0", 0.0);
  rec.t1 = num("t1", 0.0);
  rec.attempts = static_cast<long long>(num("attempts", 0));
  rec.backoff_s = num("backoff_s", 0.0);
  rec.bytes = static_cast<long long>(num("bytes", 0));
  rec.shard = static_cast<int>(num("shard", -1));
  rec.version = static_cast<long long>(num("version", -1));
  rec.commit_version = static_cast<long long>(num("commit_version", -1));
  rec.outcome = str("outcome");
  rec.level = str("level");
  if (rec.phase.empty()) return std::nullopt;
  return rec;
}

CriticalPathResult critical_path(const std::vector<LifecycleRecord>& records,
                                 double sim_seconds) {
  CriticalPathResult out;

  // Assemble chains. Dispatch-less hierarchy records (root_wait/root_merge)
  // become pseudo-chains under synthetic negative keys, so a barrier wait can
  // carry the path across an idle edge.
  std::map<long long, Chain> chains;
  long long next_pseudo = -2;
  for (const LifecycleRecord& r : records) {
    const long long key = r.dispatch >= 0 ? r.dispatch : next_pseudo--;
    Chain& c = chains[key];
    if (c.phases.empty()) {
      c.dispatch = r.dispatch;
      c.client = r.client;
      c.shard = r.shard;
      c.start = r.t0;
      c.end = r.t1;
    }
    c.phases.push_back(&r);
    c.start = std::min(c.start, r.t0);
    c.end = std::max(c.end, r.t1);
    if (r.shard >= 0) c.shard = r.shard;
  }
  for (auto& [key, c] : chains) {
    (void)key;
    std::sort(c.phases.begin(), c.phases.end(),
              [](const LifecycleRecord* a, const LifecycleRecord* b) {
                if (a->t0 != b->t0) return a->t0 < b->t0;
                return a->t1 < b->t1;
              });
  }

  double anchor = sim_seconds;
  if (anchor <= 0.0) {
    for (const auto& [key, c] : chains) {
      (void)key;
      anchor = std::max(anchor, c.end);
    }
  }
  out.total = anchor;
  if (anchor <= 0.0 || chains.empty()) return out;

  const double eps = 1e-9 * std::max(1.0, anchor);
  const auto blame_gap = [&](double t0, double t1) {
    if (t1 - t0 <= eps) return;
    out.by_phase["unattributed"] += t1 - t0;
    out.unattributed += t1 - t0;
    out.steps.push_back({-1, -1, -1, "unattributed", t0, t1, t1 - t0});
  };

  std::set<long long> used;
  double cursor = anchor;
  while (cursor > eps) {
    // The furthest any unused chain reaches without passing the cursor.
    double best_reach = -1.0;
    for (const auto& [key, c] : chains) {
      if (used.count(key)) continue;
      best_reach = std::max(best_reach, c.reach(cursor, eps));
    }
    if (best_reach <= eps) {
      blame_gap(0.0, cursor);
      break;
    }
    if (best_reach < cursor - eps) {
      blame_gap(best_reach, cursor);
      cursor = best_reach;
      continue;
    }
    // Among chains reaching the cursor, the determining one is the latest
    // actual arrival (ties resolved to the highest dispatch id — the map is
    // id-ordered, so >= keeps the last).
    long long chosen = 0;
    bool have = false;
    double chosen_work = -1.0;
    for (const auto& [key, c] : chains) {
      if (used.count(key)) continue;
      if (c.reach(cursor, eps) < cursor - eps) continue;
      const double w = c.work_end(cursor, eps);
      if (!have || w >= chosen_work) {
        have = true;
        chosen = key;
        chosen_work = w;
      }
    }
    const Chain& c = chains[chosen];
    used.insert(chosen);
    if (cursor - c.start <= eps) continue;  // zero-length chain: no progress
    // Blame the chain's phases from the cursor back to its select instant.
    double covered_to = cursor;
    for (auto it = c.phases.rbegin(); it != c.phases.rend(); ++it) {
      const LifecycleRecord& p = **it;
      if (p.t0 >= covered_to - eps) continue;  // beyond the cursor
      const double t1 = std::min(p.t1, covered_to);
      const double dur = t1 - p.t0;
      if (dur <= eps) continue;
      if (p.t1 < covered_to - eps) blame_gap(p.t1, covered_to);
      double wire = dur;
      if (is_transfer(p.phase) && p.backoff_s > 0.0) {
        const double backoff = std::min(p.backoff_s, dur);
        wire = dur - backoff;
        out.by_phase["backoff"] += backoff;
      }
      out.by_phase[p.phase] += wire;
      out.attributed += dur;
      if (c.client >= 0) out.by_client[c.client] += dur;
      out.by_shard[c.shard] += dur;
      out.steps.push_back({c.dispatch, c.client, c.shard, p.phase, p.t0, t1, dur});
      covered_to = p.t0;
    }
    if (covered_to > c.start + eps) blame_gap(c.start, covered_to);
    cursor = c.start;
  }
  return out;
}

}  // namespace afl::obs
