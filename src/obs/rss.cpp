#include "obs/rss.hpp"

#include <cstdio>
#include <cstring>

#include "obs/metrics.hpp"

namespace afl::obs {

RssSample read_rss() {
  RssSample sample;
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return sample;
  char line[256];
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    unsigned long long kb = 0;
    if (std::sscanf(line, "VmRSS: %llu kB", &kb) == 1) {
      sample.rss_bytes = static_cast<std::size_t>(kb) * 1024;
    } else if (std::sscanf(line, "VmHWM: %llu kB", &kb) == 1) {
      sample.peak_bytes = static_cast<std::size_t>(kb) * 1024;
    }
  }
  std::fclose(f);
  sample.valid = sample.rss_bytes > 0 || sample.peak_bytes > 0;
  return sample;
}

RssSample sample_rss() {
  const RssSample sample = read_rss();
  if (sample.valid) {
    metrics().gauge("afl.proc.rss.bytes").set(static_cast<double>(sample.rss_bytes));
    metrics()
        .gauge("afl.proc.rss.peak.bytes")
        .set(static_cast<double>(sample.peak_bytes));
  }
  return sample;
}

}  // namespace afl::obs
