#include "obs/status.hpp"

#include <cmath>
#include <cstdio>
#include <cstring>

#include "obs/json.hpp"

namespace afl::obs {
namespace {

std::string fmt(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

}  // namespace

void RunStatus::set_algorithm(std::string_view name) {
  const std::size_t n = std::min(name.size(), sizeof(algorithm) - 1);
  std::memcpy(algorithm, name.data(), n);
  algorithm[n] = '\0';
}

void StatusBoard::publish(const RunStatus& status) {
  seq_.fetch_add(1, std::memory_order_acq_rel);  // odd: write in progress
  slot_ = status;
  seq_.fetch_add(1, std::memory_order_release);  // even: stable
}

RunStatus StatusBoard::read() const {
  for (;;) {
    const std::uint64_t before = seq_.load(std::memory_order_acquire);
    if (before & 1) continue;  // writer mid-publish
    RunStatus copy = slot_;
    std::atomic_thread_fence(std::memory_order_acquire);
    if (seq_.load(std::memory_order_relaxed) == before) return copy;
  }
}

StatusBoard& run_status() {
  static StatusBoard* board = new StatusBoard();  // leaked: usable during shutdown
  return *board;
}

std::string render_status_json(const RunStatus& s) {
  std::string out = "{\"active\":";
  out += s.active ? "true" : "false";
  out += ",\"algorithm\":\"" + json_escape(s.algorithm) + '"';
  out += ",\"round\":" + std::to_string(s.round);
  out += ",\"total_rounds\":" + std::to_string(s.total_rounds);
  out += ",\"full_acc\":" + fmt(s.full_acc);
  out += ",\"avg_acc\":" + fmt(s.avg_acc);
  out += ",\"selector_entropy\":" + fmt(s.selector_entropy);
  out += ",\"params_sent\":" + std::to_string(s.params_sent);
  out += ",\"params_returned\":" + std::to_string(s.params_returned);
  out += ",\"waste_rate\":" + fmt(s.waste_rate);
  out += ",\"clients_ok\":" + std::to_string(s.clients_ok);
  out += ",\"clients_failed\":" + std::to_string(s.clients_failed);
  out += ",\"wall_seconds\":" + fmt(s.wall_seconds);
  out += ",\"eta_seconds\":" + fmt(s.eta_seconds);
  out += ",\"threads\":" + std::to_string(s.threads);
  if (s.cp_valid) {
    out += ",\"critical_path\":{\"downlink\":" + fmt(s.cp_downlink);
    out += ",\"compute\":" + fmt(s.cp_compute);
    out += ",\"uplink\":" + fmt(s.cp_uplink);
    out += ",\"backoff\":" + fmt(s.cp_backoff);
    out += ",\"buffer_wait\":" + fmt(s.cp_buffer_wait);
    out += '}';
  }
  out += '}';
  return out;
}

}  // namespace afl::obs
