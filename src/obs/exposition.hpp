#pragma once
// Serving-side rendering of the metrics Registry: Prometheus text exposition
// format 0.0.4 (counters, gauges, histograms with cumulative `le` buckets
// plus `_sum`/`_count`) and a single JSON snapshot object. Consumed by the
// embedded HTTP endpoint (obs/http.hpp) and directly writable to files for
// offline scraping.

#include <string>
#include <string_view>

#include "obs/metrics.hpp"

namespace afl::obs {

/// Mangles an internal dotted metric name into a legal Prometheus metric
/// name: every character outside [a-zA-Z0-9_:] becomes '_' and a leading
/// digit gets a '_' prefix (afl.run.round.seconds -> afl_run_round_seconds).
std::string prometheus_name(std::string_view name);

/// Renders every instrument in `registry` as Prometheus text. Counters and
/// gauges are one sample each; histograms expand to the full cumulative
/// bucket series ending in le="+Inf", plus <name>_sum and <name>_count.
std::string render_prometheus(const Registry& registry);

/// Renders the whole registry as one JSON object:
/// {"ts_ms":..,"counters":{..},"gauges":{..},"histograms":{name:{count,sum,
/// mean,min,max,p50,p95,p99}}}. Always a valid JSON document, even when the
/// registry is empty.
std::string render_json(const Registry& registry);

}  // namespace afl::obs
