#pragma once
// Process-wide metrics: named counters, gauges, and fixed-bucket histograms
// with percentile summaries. All instruments are thread-safe and lock-free on
// the record path; the registry itself takes a mutex only on name lookup, so
// hot paths should cache the returned reference (function-local static).
//
// Naming scheme (see docs/OBSERVABILITY.md): `afl.<layer>.<what>.<unit>`,
// e.g. afl.tensor.gemm.seconds, afl.fl.local_train.samples,
// afl.rl.selector.entropy, afl.engine.pool.utilization.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace afl::obs {

class Counter {
 public:
  void inc(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  void add(double d);
  double value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed-bucket histogram with Prometheus-style "le" semantics: a sample `v`
/// lands in the first bucket whose upper bound is >= v; samples above the last
/// bound land in an implicit overflow bucket. percentile() walks the
/// cumulative counts and reports the crossing bucket's upper bound clamped to
/// the observed [min, max], so on inputs that sit exactly on bucket bounds the
/// percentiles are exact.
class Histogram {
 public:
  /// `bounds` must be ascending; empty selects default_time_bounds().
  explicit Histogram(std::vector<double> bounds = {});

  void record(double v);

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double min() const;  // 0 when empty
  double max() const;  // 0 when empty
  double mean() const;

  /// p in [0, 100]. Returns 0 when empty.
  double percentile(double p) const;

  struct Snapshot {
    std::uint64_t count = 0;
    double sum = 0.0, mean = 0.0, min = 0.0, max = 0.0;
    double p50 = 0.0, p95 = 0.0, p99 = 0.0;
  };
  Snapshot snapshot() const;

  /// Cumulative bucket view (Prometheus "le" semantics): cumulative[i] counts
  /// samples <= bounds[i]; cumulative.back() is the +Inf bucket and equals the
  /// total sample count the view was taken at.
  struct Buckets {
    std::vector<double> bounds;             // ascending upper bounds
    std::vector<std::uint64_t> cumulative;  // bounds.size() + 1 entries
  };
  Buckets buckets() const;

  void reset();

  /// Geometric bounds from `lo` to `hi` inclusive, `n` >= 2 buckets.
  static std::vector<double> exponential_bounds(double lo, double hi, std::size_t n);
  /// Default bounds for wall-time samples in seconds: 1 microsecond .. 100 s.
  static std::vector<double> default_time_bounds();

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> buckets_;  // bounds_.size() + 1 (overflow)
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};
};

/// Named instrument registry. Lookup creates on first use; returned references
/// stay valid for the registry's lifetime.
class Registry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// `bounds` is honored only on first creation of `name`.
  Histogram& histogram(const std::string& name, std::vector<double> bounds = {});

  std::vector<std::pair<std::string, std::uint64_t>> counters() const;
  std::vector<std::pair<std::string, double>> gauges() const;
  std::vector<std::pair<std::string, Histogram::Snapshot>> histograms() const;
  /// Stable pointers to the live histograms (valid for the registry's
  /// lifetime) — the exposition layer needs bucket-level detail, not just the
  /// percentile snapshot.
  std::vector<std::pair<std::string, const Histogram*>> histogram_ptrs() const;

  /// One JSON object per instrument, one per line.
  std::string to_jsonl() const;

  /// Zeroes every instrument (names are kept).
  void reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// The process-wide registry every instrumentation site records into.
Registry& metrics();

}  // namespace afl::obs
