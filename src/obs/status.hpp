#pragma once
// Live run status: a trivially-copyable snapshot of the current federated run
// (algorithm, round progress, latest accuracy, comm totals, ETA) published by
// the RoundEngine once per round and served by the /status HTTP endpoint.
//
// The board is a seqlock: the single writer (the engine thread) bumps a
// sequence counter around a plain struct copy, readers retry until they
// observe an even, unchanged sequence. Writers never block and never touch a
// mutex, so publishing costs a struct copy even when nobody is watching.

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

namespace afl::obs {

struct RunStatus {
  bool active = false;          // true while a run is in flight
  char algorithm[64] = {};      // fixed-size so the struct stays memcpy-able
  std::uint64_t round = 0;      // last completed round (1-based)
  std::uint64_t total_rounds = 0;
  double full_acc = 0.0;        // latest evaluated full-model accuracy
  double avg_acc = 0.0;         // latest mean submodel accuracy
  double selector_entropy = 0.0;
  std::uint64_t params_sent = 0;
  std::uint64_t params_returned = 0;
  double waste_rate = 0.0;
  std::uint64_t clients_ok = 0;
  std::uint64_t clients_failed = 0;
  double wall_seconds = 0.0;    // elapsed run wall time at publish
  double eta_seconds = 0.0;     // wall/round * remaining rounds
  std::uint64_t threads = 1;
  // Online critical-path attribution (simulated seconds per lifecycle phase,
  // engine/lifecycle.hpp): filled only by runs that model virtual time.
  // Rendered as a nested "critical_path" block when cp_valid.
  bool cp_valid = false;
  double cp_downlink = 0.0;
  double cp_compute = 0.0;
  double cp_uplink = 0.0;
  double cp_backoff = 0.0;
  double cp_buffer_wait = 0.0;

  void set_algorithm(std::string_view name);
};

class StatusBoard {
 public:
  /// Single-writer publish (engine thread only).
  void publish(const RunStatus& status);

  /// Lock-free consistent read; retries while a publish is in flight.
  RunStatus read() const;

 private:
  std::atomic<std::uint64_t> seq_{0};
  RunStatus slot_{};
};

/// The process-wide board the RoundEngine publishes into.
StatusBoard& run_status();

/// Renders a status snapshot as one JSON object (the /status payload).
std::string render_status_json(const RunStatus& status);

}  // namespace afl::obs
