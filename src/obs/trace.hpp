#pragma once
// Structured JSONL trace emitter. Every record is one JSON object per line
// with at least {"ts_ms": <ms since process start>, "kind": "<event kind>"};
// spans additionally carry "dur_ms". Tracing is off by default and enabled by
// pointing AFL_TRACE_JSONL at a file path (or programmatically via
// set_trace_path). When disabled, events cost one relaxed atomic load.
//
// Event kinds emitted by the FL runtime: round, dispatch, local_train,
// aggregate, evaluate, rl_update, rl_tables (see docs/OBSERVABILITY.md).

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace afl::obs {

/// Fast check: is a trace sink attached?
bool trace_enabled();

/// Opens (truncating) `path` as the trace sink; empty path closes the sink
/// and disables tracing. Thread-safe. Opening a sink also registers the
/// atexit + fatal-signal flush hooks, so a truncated run still leaves an
/// analyzable trace on disk (docs/OBSERVABILITY.md).
void set_trace_path(const std::string& path);

/// Pushes any buffered trace output to stable storage (fflush + fsync).
/// Called automatically at exit and from the fatal-signal hook; safe to call
/// any time from ordinary (non-signal) context.
void flush_trace_sink();

/// Registers an extra sink-flush callback run by the atexit hook alongside
/// the trace flush (e.g. a metrics JSONL stream). Callbacks must be plain
/// function pointers, may lock/allocate (they never run in signal context),
/// and must be cheap + idempotent: the engines also refresh them at every
/// round boundary via run_trace_flush_hooks(), so a SIGKILL-style death —
/// which skips atexit — still leaves residue at most one round stale.
/// Returns false when the fixed hook table is full. Duplicate registrations
/// are collapsed.
using TraceFlushHook = void (*)();
bool add_trace_flush_hook(TraceFlushHook hook);

/// Runs every registered flush hook now (ordinary context, not the trace
/// sink itself). Called by the engines at round boundaries so crash residue
/// stays fresh even when the process dies without reaching atexit.
void run_trace_flush_hooks();

/// Milliseconds since process start (well, since the obs layer was first
/// touched) — the timebase of every trace record.
double trace_now_ms();

/// One trace record under construction. All field() calls are no-ops when
/// tracing is disabled; emit() writes the line (and is called by the
/// destructor if not invoked explicitly).
class TraceEvent {
 public:
  explicit TraceEvent(std::string_view kind);
  ~TraceEvent();
  TraceEvent(const TraceEvent&) = delete;
  TraceEvent& operator=(const TraceEvent&) = delete;

  bool enabled() const { return enabled_; }

  TraceEvent& field(std::string_view key, double v);
  TraceEvent& field(std::string_view key, std::uint64_t v);
  TraceEvent& field(std::string_view key, std::int64_t v);
  TraceEvent& field(std::string_view key, int v) { return field(key, static_cast<std::int64_t>(v)); }
  TraceEvent& field(std::string_view key, bool v);
  TraceEvent& field(std::string_view key, std::string_view v);
  TraceEvent& field(std::string_view key, const char* v) { return field(key, std::string_view(v)); }
  TraceEvent& field(std::string_view key, const std::vector<double>& v);

  void emit();

 private:
  bool enabled_;
  bool emitted_ = false;
  std::string buf_;
};

/// RAII span: emits its event with a "dur_ms" field on destruction.
class TraceSpan {
 public:
  explicit TraceSpan(std::string_view kind) : ev_(kind) {
    if (ev_.enabled()) start_ = std::chrono::steady_clock::now();
  }
  ~TraceSpan();
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  template <typename T>
  TraceSpan& field(std::string_view key, const T& v) {
    ev_.field(key, v);
    return *this;
  }

 private:
  TraceEvent ev_;
  std::chrono::steady_clock::time_point start_{};
};

}  // namespace afl::obs
