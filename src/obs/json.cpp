#include "obs/json.hpp"

#include <cctype>
#include <cstdio>

namespace afl::obs {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

namespace {

// Recursive-descent validator over a cursor. Depth-limited so hostile input
// cannot blow the stack.
class Validator {
 public:
  explicit Validator(std::string_view text) : text_(text) {}

  bool run() {
    skip_ws();
    if (!value(0)) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  static constexpr int kMaxDepth = 64;

  bool eof() const { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }

  void skip_ws() {
    while (!eof() && (peek() == ' ' || peek() == '\t' || peek() == '\n' || peek() == '\r')) {
      ++pos_;
    }
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  bool value(int depth) {
    if (depth > kMaxDepth || eof()) return false;
    switch (peek()) {
      case '{':
        return object(depth);
      case '[':
        return array(depth);
      case '"':
        return string();
      case 't':
        return literal("true");
      case 'f':
        return literal("false");
      case 'n':
        return literal("null");
      default:
        return number();
    }
  }

  bool object(int depth) {
    ++pos_;  // '{'
    skip_ws();
    if (!eof() && peek() == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      skip_ws();
      if (eof() || peek() != '"' || !string()) return false;
      skip_ws();
      if (eof() || peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value(depth + 1)) return false;
      skip_ws();
      if (eof()) return false;
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool array(int depth) {
    ++pos_;  // '['
    skip_ws();
    if (!eof() && peek() == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      skip_ws();
      if (!value(depth + 1)) return false;
      skip_ws();
      if (eof()) return false;
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool string() {
    ++pos_;  // opening quote
    while (!eof()) {
      const unsigned char c = static_cast<unsigned char>(peek());
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c < 0x20) return false;  // raw control character
      if (c == '\\') {
        ++pos_;
        if (eof()) return false;
        const char e = peek();
        if (e == 'u') {
          ++pos_;
          for (int i = 0; i < 4; ++i, ++pos_) {
            if (eof() || !std::isxdigit(static_cast<unsigned char>(peek()))) return false;
          }
          continue;
        }
        if (e != '"' && e != '\\' && e != '/' && e != 'b' && e != 'f' && e != 'n' &&
            e != 'r' && e != 't') {
          return false;
        }
        ++pos_;
        continue;
      }
      ++pos_;
    }
    return false;  // unterminated
  }

  bool digits() {
    if (eof() || !std::isdigit(static_cast<unsigned char>(peek()))) return false;
    while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    return true;
  }

  bool number() {
    if (!eof() && peek() == '-') ++pos_;
    if (eof()) return false;
    if (peek() == '0') {
      ++pos_;
    } else if (!digits()) {
      return false;
    }
    if (!eof() && peek() == '.') {
      ++pos_;
      if (!digits()) return false;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      if (!digits()) return false;
    }
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

bool json_validate(std::string_view text) { return Validator(text).run(); }

}  // namespace afl::obs
