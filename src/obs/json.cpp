#include "obs/json.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace afl::obs {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

namespace {

std::string json_unescape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (c != '\\') {
      out += c;
      continue;
    }
    if (++i >= s.size()) break;
    switch (s[i]) {
      case '"': out += '"'; break;
      case '\\': out += '\\'; break;
      case '/': out += '/'; break;
      case 'b': out += '\b'; break;
      case 'f': out += '\f'; break;
      case 'n': out += '\n'; break;
      case 'r': out += '\r'; break;
      case 't': out += '\t'; break;
      case 'u': {
        if (i + 4 < s.size()) {
          const unsigned long code =
              std::strtoul(std::string(s.substr(i + 1, 4)).c_str(), nullptr, 16);
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else if (code >= 0xD800 && code <= 0xDFFF) {
            out += '?';  // surrogate halves are not decoded
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          i += 4;
        }
        break;
      }
      default: out += s[i];
    }
  }
  return out;
}

// Recursive-descent validator over a cursor. Depth-limited so hostile input
// cannot blow the stack. Optionally captures the root object's top-level
// fields as raw value spans (json_object_fields).
class Validator {
 public:
  explicit Validator(std::string_view text,
                     std::map<std::string, std::string>* fields = nullptr)
      : text_(text), fields_(fields) {}

  bool run() {
    skip_ws();
    if (fields_ != nullptr && (eof() || peek() != '{')) return false;
    if (!value(0)) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  static constexpr int kMaxDepth = 64;

  bool eof() const { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }

  void skip_ws() {
    while (!eof() && (peek() == ' ' || peek() == '\t' || peek() == '\n' || peek() == '\r')) {
      ++pos_;
    }
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  bool value(int depth) {
    if (depth > kMaxDepth || eof()) return false;
    switch (peek()) {
      case '{':
        return object(depth);
      case '[':
        return array(depth);
      case '"':
        return string();
      case 't':
        return literal("true");
      case 'f':
        return literal("false");
      case 'n':
        return literal("null");
      default:
        return number();
    }
  }

  bool object(int depth) {
    ++pos_;  // '{'
    skip_ws();
    if (!eof() && peek() == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      skip_ws();
      const std::size_t key_start = pos_;
      if (eof() || peek() != '"' || !string()) return false;
      const std::size_t key_end = pos_;
      skip_ws();
      if (eof() || peek() != ':') return false;
      ++pos_;
      skip_ws();
      const std::size_t val_start = pos_;
      if (!value(depth + 1)) return false;
      if (fields_ != nullptr && depth == 0) {
        (*fields_)[json_unescape(
            text_.substr(key_start + 1, key_end - key_start - 2))] =
            std::string(text_.substr(val_start, pos_ - val_start));
      }
      skip_ws();
      if (eof()) return false;
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool array(int depth) {
    ++pos_;  // '['
    skip_ws();
    if (!eof() && peek() == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      skip_ws();
      if (!value(depth + 1)) return false;
      skip_ws();
      if (eof()) return false;
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool string() {
    ++pos_;  // opening quote
    while (!eof()) {
      const unsigned char c = static_cast<unsigned char>(peek());
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c < 0x20) return false;  // raw control character
      if (c == '\\') {
        ++pos_;
        if (eof()) return false;
        const char e = peek();
        if (e == 'u') {
          ++pos_;
          for (int i = 0; i < 4; ++i, ++pos_) {
            if (eof() || !std::isxdigit(static_cast<unsigned char>(peek()))) return false;
          }
          continue;
        }
        if (e != '"' && e != '\\' && e != '/' && e != 'b' && e != 'f' && e != 'n' &&
            e != 'r' && e != 't') {
          return false;
        }
        ++pos_;
        continue;
      }
      ++pos_;
    }
    return false;  // unterminated
  }

  bool digits() {
    if (eof() || !std::isdigit(static_cast<unsigned char>(peek()))) return false;
    while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    return true;
  }

  bool number() {
    if (!eof() && peek() == '-') ++pos_;
    if (eof()) return false;
    if (peek() == '0') {
      ++pos_;
    } else if (!digits()) {
      return false;
    }
    if (!eof() && peek() == '.') {
      ++pos_;
      if (!digits()) return false;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      if (!digits()) return false;
    }
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::map<std::string, std::string>* fields_;
};

}  // namespace

bool json_validate(std::string_view text) { return Validator(text).run(); }

std::map<std::string, std::string> json_object_fields(std::string_view text) {
  std::map<std::string, std::string> fields;
  if (!Validator(text, &fields).run()) fields.clear();
  return fields;
}

std::vector<std::string> json_array_items(std::string_view raw) {
  std::vector<std::string> items;
  if (!json_validate(raw)) return items;
  const std::size_t b = raw.find_first_not_of(" \t\r\n");
  const std::size_t e = raw.find_last_not_of(" \t\r\n");
  if (b == std::string_view::npos || raw[b] != '[' || raw[e] != ']') return items;
  std::string_view body = raw.substr(b + 1, e - b - 1);
  // Already validated: a flat scan tracking nesting and strings is enough.
  int depth = 0;
  bool in_string = false, escaped = false;
  std::size_t start = 0;
  auto flush = [&](std::size_t end) {
    std::string_view item = body.substr(start, end - start);
    const std::size_t ib = item.find_first_not_of(" \t\r\n");
    if (ib == std::string_view::npos) return;
    const std::size_t ie = item.find_last_not_of(" \t\r\n");
    items.emplace_back(item.substr(ib, ie - ib + 1));
  };
  for (std::size_t i = 0; i < body.size(); ++i) {
    const char c = body[i];
    if (in_string) {
      if (escaped) escaped = false;
      else if (c == '\\') escaped = true;
      else if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    else if (c == '{' || c == '[') ++depth;
    else if (c == '}' || c == ']') --depth;
    else if (c == ',' && depth == 0) {
      flush(i);
      start = i + 1;
    }
  }
  flush(body.size());
  return items;
}

double json_raw_number(std::string_view raw, double fallback) {
  if (raw.empty() || !(raw.front() == '-' ||
                       std::isdigit(static_cast<unsigned char>(raw.front())))) {
    return fallback;
  }
  return std::atof(std::string(raw).c_str());
}

std::string json_raw_string(std::string_view raw, std::string_view fallback) {
  if (raw.size() < 2 || raw.front() != '"' || raw.back() != '"') {
    return std::string(fallback);
  }
  return json_unescape(raw.substr(1, raw.size() - 2));
}

}  // namespace afl::obs
