#pragma once
// RAII timers feeding histograms.
//
// ScopedTimer always records — use it on paths whose work dwarfs two clock
// reads (local training, aggregation, evaluation, a whole round).
//
// KernelTimer is for per-call instrumentation of the tensor kernels (gemm,
// im2col), which can run in the microsecond range: it is a no-op — a single
// relaxed atomic load — unless kernel profiling is switched on via
// AFL_KERNEL_PROFILE=1 or set_kernel_profiling(true).

#include <chrono>

#include "obs/metrics.hpp"

namespace afl::obs {

bool kernel_profiling_enabled();
void set_kernel_profiling(bool on);

class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& h) : h_(&h), start_(clock::now()) {}
  ~ScopedTimer() { h_->record(seconds()); }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  /// Seconds elapsed so far (the value record()ed at scope exit).
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  Histogram* h_;
  clock::time_point start_;
};

class KernelTimer {
 public:
  explicit KernelTimer(Histogram& h) : h_(kernel_profiling_enabled() ? &h : nullptr) {
    if (h_) start_ = clock::now();
  }
  ~KernelTimer() {
    if (h_) h_->record(std::chrono::duration<double>(clock::now() - start_).count());
  }
  KernelTimer(const KernelTimer&) = delete;
  KernelTimer& operator=(const KernelTimer&) = delete;

 private:
  using clock = std::chrono::steady_clock;
  Histogram* h_;
  clock::time_point start_{};
};

}  // namespace afl::obs
