#include "obs/timer.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace afl::obs {
namespace {

std::atomic<bool>& kernel_flag() {
  static std::atomic<bool> flag = [] {
    const char* env = std::getenv("AFL_KERNEL_PROFILE");
    return env != nullptr && std::strcmp(env, "0") != 0 && env[0] != '\0';
  }();
  return flag;
}

}  // namespace

bool kernel_profiling_enabled() {
  return kernel_flag().load(std::memory_order_relaxed);
}

void set_kernel_profiling(bool on) {
  kernel_flag().store(on, std::memory_order_relaxed);
}

}  // namespace afl::obs
