#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "obs/json.hpp"

namespace afl::obs {
namespace {

void atomic_add(std::atomic<double>& a, double d) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + d, std::memory_order_relaxed)) {
  }
}

void atomic_min(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v < cur && !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v > cur && !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

std::string fmt_double(double v) {
  if (!std::isfinite(v)) return "0";
  std::ostringstream os;
  os << v;
  return os.str();
}

}  // namespace

void Gauge::add(double d) { atomic_add(v_, d); }

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(bounds.empty() ? default_time_bounds() : std::move(bounds)),
      buckets_(bounds_.size() + 1) {
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    if (bounds_[i] <= bounds_[i - 1]) {
      throw std::invalid_argument("Histogram: bounds must be strictly ascending");
    }
  }
  min_.store(std::numeric_limits<double>::infinity(), std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(), std::memory_order_relaxed);
}

void Histogram::record(double v) {
  const std::size_t i = static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add(sum_, v);
  atomic_min(min_, v);
  atomic_max(max_, v);
}

double Histogram::min() const {
  const double m = min_.load(std::memory_order_relaxed);
  return std::isfinite(m) ? m : 0.0;
}

double Histogram::max() const {
  const double m = max_.load(std::memory_order_relaxed);
  return std::isfinite(m) ? m : 0.0;
}

double Histogram::mean() const {
  const std::uint64_t n = count();
  return n ? sum() / static_cast<double>(n) : 0.0;
}

double Histogram::percentile(double p) const {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(p / 100.0 * static_cast<double>(n))));
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    cum += buckets_[i].load(std::memory_order_relaxed);
    if (cum >= rank) {
      const double upper = i < bounds_.size() ? bounds_[i] : max();
      return std::clamp(upper, min(), max());
    }
  }
  return max();
}

Histogram::Buckets Histogram::buckets() const {
  Buckets b;
  b.bounds = bounds_;
  b.cumulative.reserve(buckets_.size());
  std::uint64_t cum = 0;
  for (const auto& bucket : buckets_) {
    cum += bucket.load(std::memory_order_relaxed);
    b.cumulative.push_back(cum);
  }
  return b;
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot s;
  s.count = count();
  s.sum = sum();
  s.mean = mean();
  s.min = min();
  s.max = max();
  s.p50 = percentile(50);
  s.p95 = percentile(95);
  s.p99 = percentile(99);
  return s;
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(), std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(), std::memory_order_relaxed);
}

std::vector<double> Histogram::exponential_bounds(double lo, double hi, std::size_t n) {
  if (n < 2 || lo <= 0.0 || hi <= lo) {
    throw std::invalid_argument("Histogram::exponential_bounds: need n>=2, 0<lo<hi");
  }
  std::vector<double> bounds(n);
  const double ratio = std::pow(hi / lo, 1.0 / static_cast<double>(n - 1));
  double b = lo;
  for (std::size_t i = 0; i < n; ++i, b *= ratio) bounds[i] = b;
  bounds.back() = hi;
  return bounds;
}

std::vector<double> Histogram::default_time_bounds() {
  return exponential_bounds(1e-6, 100.0, 56);
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name, std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(bounds));
  return *slot;
}

std::vector<std::pair<std::string, std::uint64_t>> Registry::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, c] : counters_) out.emplace_back(name, c->value());
  return out;
}

std::vector<std::pair<std::string, double>> Registry::gauges() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, double>> out;
  out.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) out.emplace_back(name, g->value());
  return out;
}

std::vector<std::pair<std::string, Histogram::Snapshot>> Registry::histograms() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, Histogram::Snapshot>> out;
  out.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) out.emplace_back(name, h->snapshot());
  return out;
}

std::vector<std::pair<std::string, const Histogram*>> Registry::histogram_ptrs() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, const Histogram*>> out;
  out.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) out.emplace_back(name, h.get());
  return out;
}

std::string Registry::to_jsonl() const {
  std::ostringstream os;
  for (const auto& [name, v] : counters()) {
    os << "{\"metric\":\"" << json_escape(name) << "\",\"type\":\"counter\",\"value\":"
       << v << "}\n";
  }
  for (const auto& [name, v] : gauges()) {
    os << "{\"metric\":\"" << json_escape(name) << "\",\"type\":\"gauge\",\"value\":"
       << fmt_double(v) << "}\n";
  }
  for (const auto& [name, s] : histograms()) {
    os << "{\"metric\":\"" << json_escape(name) << "\",\"type\":\"histogram\",\"count\":"
       << s.count << ",\"sum\":" << fmt_double(s.sum) << ",\"mean\":" << fmt_double(s.mean)
       << ",\"min\":" << fmt_double(s.min) << ",\"max\":" << fmt_double(s.max)
       << ",\"p50\":" << fmt_double(s.p50) << ",\"p95\":" << fmt_double(s.p95)
       << ",\"p99\":" << fmt_double(s.p99) << "}\n";
  }
  return os.str();
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  // Gauges must be cleared too: afl.rl.selector.entropy and the engine pool
  // gauges would otherwise leak their final value into the next run when one
  // process runs back-to-back experiments.
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

Registry& metrics() {
  static Registry* registry = new Registry();  // leaked: usable during shutdown
  return *registry;
}

}  // namespace afl::obs
