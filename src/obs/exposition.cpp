#include "obs/exposition.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>

#include "obs/json.hpp"
#include "obs/trace.hpp"

namespace afl::obs {
namespace {

std::string fmt(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

void append_sample(std::string& out, const std::string& name, double v) {
  out += name;
  out += ' ';
  out += fmt(v);
  out += '\n';
}

void append_type(std::string& out, const std::string& name, const char* type) {
  out += "# TYPE ";
  out += name;
  out += ' ';
  out += type;
  out += '\n';
}

}  // namespace

std::string prometheus_name(std::string_view name) {
  std::string out;
  out.reserve(name.size() + 1);
  for (char c : name) {
    const bool ok = std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  if (!out.empty() && std::isdigit(static_cast<unsigned char>(out.front()))) {
    out.insert(out.begin(), '_');
  }
  return out;
}

std::string render_prometheus(const Registry& registry) {
  std::string out;
  for (const auto& [name, v] : registry.counters()) {
    const std::string pname = prometheus_name(name);
    append_type(out, pname, "counter");
    append_sample(out, pname, static_cast<double>(v));
  }
  for (const auto& [name, v] : registry.gauges()) {
    const std::string pname = prometheus_name(name);
    append_type(out, pname, "gauge");
    append_sample(out, pname, v);
  }
  for (const auto& [name, hist] : registry.histogram_ptrs()) {
    const std::string pname = prometheus_name(name);
    append_type(out, pname, "histogram");
    const Histogram::Buckets b = hist->buckets();
    for (std::size_t i = 0; i < b.bounds.size(); ++i) {
      out += pname;
      out += "_bucket{le=\"";
      out += fmt(b.bounds[i]);
      out += "\"} ";
      out += std::to_string(b.cumulative[i]);
      out += '\n';
    }
    // The +Inf bucket doubles as the count so the series is self-consistent
    // even if samples land between the bucket read and a count() read.
    const std::uint64_t total = b.cumulative.empty() ? 0 : b.cumulative.back();
    out += pname;
    out += "_bucket{le=\"+Inf\"} ";
    out += std::to_string(total);
    out += '\n';
    append_sample(out, pname + "_sum", hist->sum());
    out += pname;
    out += "_count ";
    out += std::to_string(total);
    out += '\n';
  }
  return out;
}

std::string render_json(const Registry& registry) {
  std::string out = "{\"ts_ms\":" + fmt(trace_now_ms());
  out += ",\"counters\":{";
  bool first = true;
  for (const auto& [name, v] : registry.counters()) {
    if (!first) out += ',';
    first = false;
    out += '"' + json_escape(name) + "\":" + std::to_string(v);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, v] : registry.gauges()) {
    if (!first) out += ',';
    first = false;
    out += '"' + json_escape(name) + "\":" + fmt(v);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, s] : registry.histograms()) {
    if (!first) out += ',';
    first = false;
    out += '"' + json_escape(name) + "\":{\"count\":" + std::to_string(s.count) +
           ",\"sum\":" + fmt(s.sum) + ",\"mean\":" + fmt(s.mean) +
           ",\"min\":" + fmt(s.min) + ",\"max\":" + fmt(s.max) +
           ",\"p50\":" + fmt(s.p50) + ",\"p95\":" + fmt(s.p95) +
           ",\"p99\":" + fmt(s.p99) + '}';
  }
  out += "}}";
  return out;
}

}  // namespace afl::obs
