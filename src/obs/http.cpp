#include "obs/http.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "obs/exposition.hpp"
#include "obs/metrics.hpp"
#include "obs/status.hpp"

namespace afl::obs {
namespace {

constexpr std::size_t kMaxRequestBytes = 8192;

const char* status_text(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    default: return "Internal Server Error";
  }
}

bool send_all(int fd, const char* data, std::size_t n) {
  while (n > 0) {
    const ssize_t sent = ::send(fd, data, n, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += sent;
    n -= static_cast<std::size_t>(sent);
  }
  return true;
}

void set_io_timeout(int fd) {
  timeval tv{};
  tv.tv_sec = 2;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

}  // namespace

HttpServer::~HttpServer() { stop(); }

void HttpServer::handle(std::string path, Handler handler) {
  handlers_[std::move(path)] = std::move(handler);
}

bool HttpServer::start(std::uint16_t port) {
  if (running()) return true;
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    std::fprintf(stderr, "[WARN] obs: http socket() failed: %s\n", std::strerror(errno));
    return false;
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // monitoring is local-only
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(listen_fd_, 16) < 0) {
    std::fprintf(stderr, "[WARN] obs: http bind/listen on port %u failed: %s\n",
                 port, std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
    port_ = ntohs(addr.sin_port);
  } else {
    port_ = port;
  }
  if (::pipe(wake_fds_) != 0) {
    std::fprintf(stderr, "[WARN] obs: http self-pipe failed: %s\n", std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { serve_loop(); });
  return true;
}

void HttpServer::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  const char byte = 'q';
  [[maybe_unused]] ssize_t n = ::write(wake_fds_[1], &byte, 1);
  if (thread_.joinable()) thread_.join();
  ::close(listen_fd_);
  ::close(wake_fds_[0]);
  ::close(wake_fds_[1]);
  listen_fd_ = wake_fds_[0] = wake_fds_[1] = -1;
  port_ = 0;
}

void HttpServer::serve_loop() {
  for (;;) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {wake_fds_[0], POLLIN, 0}};
    const int ready = ::poll(fds, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if (fds[1].revents != 0) return;  // stop() poked the self-pipe
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;
    handle_connection(client);
    ::close(client);
  }
}

void HttpServer::handle_connection(int fd) {
  set_io_timeout(fd);
  std::string request;
  char buf[1024];
  while (request.size() < kMaxRequestBytes &&
         request.find("\r\n\r\n") == std::string::npos) {
    const ssize_t got = ::recv(fd, buf, sizeof(buf), 0);
    if (got <= 0) {
      if (got < 0 && errno == EINTR) continue;
      break;
    }
    request.append(buf, static_cast<std::size_t>(got));
  }

  // Request line: METHOD SP target SP version.
  Response resp;
  bool head_only = false;
  const std::size_t line_end = request.find("\r\n");
  const std::size_t sp1 = request.find(' ');
  const std::size_t sp2 = sp1 == std::string::npos ? std::string::npos
                                                   : request.find(' ', sp1 + 1);
  if (line_end == std::string::npos || sp1 == std::string::npos ||
      sp2 == std::string::npos || sp2 > line_end) {
    resp = {400, "text/plain; charset=utf-8", "bad request\n"};
  } else {
    const std::string method = request.substr(0, sp1);
    std::string target = request.substr(sp1 + 1, sp2 - sp1 - 1);
    const std::size_t query = target.find('?');
    if (query != std::string::npos) target.resize(query);
    if (method != "GET" && method != "HEAD") {
      resp = {405, "text/plain; charset=utf-8", "method not allowed\n"};
    } else {
      const auto it = handlers_.find(target);
      if (it == handlers_.end()) {
        resp = {404, "text/plain; charset=utf-8", "not found\n"};
      } else {
        resp = it->second();
      }
    }
    head_only = method == "HEAD";
  }

  // HEAD advertises the length a GET would have returned, without the body.
  std::string head = "HTTP/1.1 " + std::to_string(resp.status) + ' ' +
                     status_text(resp.status) + "\r\nContent-Type: " +
                     resp.content_type + "\r\nContent-Length: " +
                     std::to_string(resp.body.size()) +
                     "\r\nConnection: close\r\n\r\n";
  if (send_all(fd, head.data(), head.size()) && !head_only) {
    send_all(fd, resp.body.data(), resp.body.size());
  }
}

namespace {

HttpServer* g_default_server = nullptr;

void stop_default_server() {
  if (g_default_server != nullptr) g_default_server->stop();
}

}  // namespace

bool ensure_default_http_server() {
  static const bool active = [] {
    const char* env = std::getenv("AFL_HTTP_PORT");
    if (env == nullptr || env[0] == '\0') return false;
    const int port = std::atoi(env);
    if (port < 0 || port > 65535) {
      std::fprintf(stderr, "[WARN] obs: AFL_HTTP_PORT=%s out of range; not serving\n",
                   env);
      return false;
    }
    auto* server = new HttpServer();  // leaked: lives until atexit stop
    server->handle("/metrics", [] {
      return HttpServer::Response{200, "text/plain; version=0.0.4; charset=utf-8",
                                  render_prometheus(metrics())};
    });
    server->handle("/metrics.json", [] {
      return HttpServer::Response{200, "application/json", render_json(metrics())};
    });
    server->handle("/healthz", [] {
      return HttpServer::Response{200, "text/plain; charset=utf-8", "ok\n"};
    });
    server->handle("/status", [] {
      return HttpServer::Response{200, "application/json",
                                  render_status_json(run_status().read())};
    });
    if (!server->start(static_cast<std::uint16_t>(port))) {
      delete server;
      return false;
    }
    g_default_server = server;
    std::atexit(stop_default_server);
    std::fprintf(stderr, "[INFO] obs: monitoring endpoint on http://127.0.0.1:%u "
                 "(/metrics /metrics.json /healthz /status)\n",
                 server->port());
    return true;
  }();
  return active;
}

std::uint16_t default_http_port() {
  return g_default_server != nullptr ? g_default_server->port() : 0;
}

}  // namespace afl::obs
