#pragma once
// Minimal JSON utilities for the observability layer: string escaping for the
// JSONL trace/metrics writers and a strict validator used by tests and the
// trace smoke checker. Not a general-purpose JSON library — no DOM, no
// numbers-to-double parsing, just syntax.

#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace afl::obs {

/// Escapes `s` for embedding inside a JSON string literal (quotes not
/// included).
std::string json_escape(std::string_view s);

/// True when `text` is exactly one syntactically valid JSON value
/// (object/array/string/number/true/false/null) with nothing but whitespace
/// around it.
bool json_validate(std::string_view text);

/// Splits one flat-ish JSON object into its top-level fields: key -> raw
/// value text ("1.5", "\"str\"", "[1,2]", "{...}"). Returns an empty map when
/// `text` is not a syntactically valid JSON object. Every trace / metrics
/// JSONL record in this repo is such an object; this is what afl-insight and
/// the exposition tests parse with.
std::map<std::string, std::string> json_object_fields(std::string_view text);

/// Splits a raw JSON array value ("[{...},{...}]") into its top-level
/// element texts. Empty vector when `raw` is not a syntactically valid
/// array (or is the empty array). Complements json_object_fields for the
/// one nesting level the bench snapshots use (sections: [...]).
std::vector<std::string> json_array_items(std::string_view raw);

/// Interprets a raw field value as a number; `fallback` when it is not one.
double json_raw_number(std::string_view raw, double fallback = 0.0);

/// Interprets a raw field value as a string (unquoting + unescaping);
/// `fallback` when it is not a string literal.
std::string json_raw_string(std::string_view raw, std::string_view fallback = "");

}  // namespace afl::obs
