#pragma once
// Minimal JSON utilities for the observability layer: string escaping for the
// JSONL trace/metrics writers and a strict validator used by tests and the
// trace smoke checker. Not a general-purpose JSON library — no DOM, no
// numbers-to-double parsing, just syntax.

#include <string>
#include <string_view>

namespace afl::obs {

/// Escapes `s` for embedding inside a JSON string literal (quotes not
/// included).
std::string json_escape(std::string_view s);

/// True when `text` is exactly one syntactically valid JSON value
/// (object/array/string/number/true/false/null) with nothing but whitespace
/// around it.
bool json_validate(std::string_view text);

}  // namespace afl::obs
