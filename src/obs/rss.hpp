#pragma once
// Process-memory observability: resident-set-size gauges for scale-out runs.
//
// The hierarchical engine's whole point is fitting 10^5-10^6 simulated
// clients in memory (docs/HIERARCHY.md); these helpers make that claim
// measurable. read_rss() parses /proc/self/status (VmRSS / VmHWM);
// sample_rss() additionally publishes the values as gauges:
//   afl.proc.rss.bytes       current resident set
//   afl.proc.rss.peak.bytes  process high-water mark
// On platforms without /proc the sample comes back invalid and no gauges are
// touched.

#include <cstddef>

namespace afl::obs {

struct RssSample {
  std::size_t rss_bytes = 0;   // current resident set (VmRSS)
  std::size_t peak_bytes = 0;  // high-water mark (VmHWM)
  bool valid = false;
};

/// Reads the current process RSS from /proc/self/status.
RssSample read_rss();

/// read_rss() + publishes the afl.proc.rss.* gauges when the read succeeds.
RssSample sample_rss();

}  // namespace afl::obs
