#include "obs/trace.hpp"

#include <atomic>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <mutex>

#ifdef _WIN32
#include <io.h>
#define AFL_FSYNC _commit
#define AFL_FILENO _fileno
#else
#include <unistd.h>
#define AFL_FSYNC fsync
#define AFL_FILENO fileno
#endif

#include "obs/json.hpp"

namespace afl::obs {
namespace {

using clock = std::chrono::steady_clock;

clock::time_point process_start() {
  static const clock::time_point start = clock::now();
  return start;
}

/// File descriptor of the open trace sink, readable from a signal handler.
/// -1 = no sink. Kept outside TraceState so the fatal-signal hook needs no
/// locks or heap access (both unsafe in signal context).
std::atomic<int> g_trace_fd{-1};

/// Extra flush callbacks (metrics sinks etc.), run from the atexit hook only
/// — ordinary code, so they may lock and allocate. Fixed-size slots: hook
/// registration is rare (a handful per process) and a vector would need a
/// heap that might already be torn down at exit time.
constexpr std::size_t kMaxFlushHooks = 8;
std::atomic<TraceFlushHook> g_flush_hooks[kMaxFlushHooks] = {};
std::atomic<std::size_t> g_flush_hook_count{0};

void run_flush_hooks() {
  const std::size_t n = g_flush_hook_count.load(std::memory_order_acquire);
  for (std::size_t i = 0; i < n && i < kMaxFlushHooks; ++i) {
    TraceFlushHook hook = g_flush_hooks[i].load(std::memory_order_acquire);
    if (hook != nullptr) hook();
  }
}

void atexit_flush() {
  run_flush_hooks();
  flush_trace_sink();
}

/// Fatal-signal hook: push the trace tail to stable storage, then restore the
/// default disposition and re-raise so the process still dies with the right
/// status/core. Only async-signal-safe calls allowed here: fsync on a cached
/// fd qualifies; fflush/mutexes do not (write_line fflushes per line, so the
/// stdio buffer is empty except for a line racing the crash).
void fatal_signal_flush(int signo) {
  const int fd = g_trace_fd.load(std::memory_order_relaxed);
  if (fd >= 0) AFL_FSYNC(fd);
  std::signal(signo, SIG_DFL);
  std::raise(signo);
}

void install_flush_hooks() {
  static bool installed = false;  // guarded by TraceState::mu at call sites
  if (installed) return;
  installed = true;
  std::atexit(atexit_flush);
  static const int kFatalSignals[] = {SIGSEGV, SIGFPE, SIGILL, SIGABRT,
                                      SIGTERM, SIGINT,
#ifndef _WIN32
                                      SIGBUS
#endif
  };
  for (int signo : kFatalSignals) std::signal(signo, fatal_signal_flush);
}

struct TraceState {
  std::mutex mu;
  std::FILE* out = nullptr;
  std::atomic<bool> enabled{false};

  TraceState() {
    process_start();  // pin the timebase as early as possible
    const char* env = std::getenv("AFL_TRACE_JSONL");
    if (env != nullptr && env[0] != '\0') open(env);
  }

  void open(const std::string& path) {
    std::lock_guard<std::mutex> lock(mu);
    if (out != nullptr) {
      std::fclose(out);
      out = nullptr;
      g_trace_fd.store(-1, std::memory_order_relaxed);
    }
    if (path.empty()) {
      enabled.store(false, std::memory_order_relaxed);
      return;
    }
    out = std::fopen(path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "[WARN] obs: cannot open trace file %s; tracing disabled\n",
                   path.c_str());
      enabled.store(false, std::memory_order_relaxed);
      return;
    }
    g_trace_fd.store(AFL_FILENO(out), std::memory_order_relaxed);
    install_flush_hooks();
    enabled.store(true, std::memory_order_relaxed);
  }

  void write_line(const std::string& line) {
    std::lock_guard<std::mutex> lock(mu);
    if (out == nullptr) return;
    std::fwrite(line.data(), 1, line.size(), out);
    std::fputc('\n', out);
    std::fflush(out);  // trace volume is low (control-plane events, not kernels)
  }

  void flush() {
    std::lock_guard<std::mutex> lock(mu);
    if (out == nullptr) return;
    std::fflush(out);
    AFL_FSYNC(AFL_FILENO(out));
  }
};

TraceState& state() {
  static TraceState* s = new TraceState();  // leaked: usable during shutdown
  return *s;
}

void append_number(std::string& buf, double v) {
  if (!std::isfinite(v)) {
    buf += '0';
    return;
  }
  char tmp[32];
  std::snprintf(tmp, sizeof(tmp), "%.6g", v);
  buf += tmp;
}

}  // namespace

bool trace_enabled() { return state().enabled.load(std::memory_order_relaxed); }

void set_trace_path(const std::string& path) { state().open(path); }

void flush_trace_sink() { state().flush(); }

void run_trace_flush_hooks() { run_flush_hooks(); }

bool add_trace_flush_hook(TraceFlushHook hook) {
  if (hook == nullptr) return false;
  std::lock_guard<std::mutex> lock(state().mu);
  install_flush_hooks();
  const std::size_t n = g_flush_hook_count.load(std::memory_order_relaxed);
  if (n >= kMaxFlushHooks) return false;
  for (std::size_t i = 0; i < n; ++i) {
    if (g_flush_hooks[i].load(std::memory_order_relaxed) == hook) return true;
  }
  g_flush_hooks[n].store(hook, std::memory_order_release);
  g_flush_hook_count.store(n + 1, std::memory_order_release);
  return true;
}

double trace_now_ms() {
  return std::chrono::duration<double, std::milli>(clock::now() - process_start())
      .count();
}

TraceEvent::TraceEvent(std::string_view kind) : enabled_(trace_enabled()) {
  if (!enabled_) return;
  buf_.reserve(160);
  buf_ += "{\"ts_ms\":";
  append_number(buf_, trace_now_ms());
  buf_ += ",\"kind\":\"";
  buf_ += json_escape(kind);
  buf_ += '"';
}

TraceEvent::~TraceEvent() { emit(); }

TraceEvent& TraceEvent::field(std::string_view key, double v) {
  if (!enabled_) return *this;
  buf_ += ",\"";
  buf_ += json_escape(key);
  buf_ += "\":";
  append_number(buf_, v);
  return *this;
}

TraceEvent& TraceEvent::field(std::string_view key, std::uint64_t v) {
  if (!enabled_) return *this;
  buf_ += ",\"";
  buf_ += json_escape(key);
  buf_ += "\":";
  buf_ += std::to_string(v);
  return *this;
}

TraceEvent& TraceEvent::field(std::string_view key, std::int64_t v) {
  if (!enabled_) return *this;
  buf_ += ",\"";
  buf_ += json_escape(key);
  buf_ += "\":";
  buf_ += std::to_string(v);
  return *this;
}

TraceEvent& TraceEvent::field(std::string_view key, bool v) {
  if (!enabled_) return *this;
  buf_ += ",\"";
  buf_ += json_escape(key);
  buf_ += "\":";
  buf_ += v ? "true" : "false";
  return *this;
}

TraceEvent& TraceEvent::field(std::string_view key, std::string_view v) {
  if (!enabled_) return *this;
  buf_ += ",\"";
  buf_ += json_escape(key);
  buf_ += "\":\"";
  buf_ += json_escape(v);
  buf_ += '"';
  return *this;
}

TraceEvent& TraceEvent::field(std::string_view key, const std::vector<double>& v) {
  if (!enabled_) return *this;
  buf_ += ",\"";
  buf_ += json_escape(key);
  buf_ += "\":[";
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i) buf_ += ',';
    append_number(buf_, v[i]);
  }
  buf_ += ']';
  return *this;
}

void TraceEvent::emit() {
  if (!enabled_ || emitted_) return;
  emitted_ = true;
  buf_ += '}';
  state().write_line(buf_);
}

TraceSpan::~TraceSpan() {
  if (ev_.enabled()) {
    ev_.field("dur_ms", std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - start_)
                            .count());
  }
  ev_.emit();
}

}  // namespace afl::obs
