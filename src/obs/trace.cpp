#include "obs/trace.hpp"

#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <mutex>

#include "obs/json.hpp"

namespace afl::obs {
namespace {

using clock = std::chrono::steady_clock;

clock::time_point process_start() {
  static const clock::time_point start = clock::now();
  return start;
}

struct TraceState {
  std::mutex mu;
  std::ofstream out;
  std::atomic<bool> enabled{false};

  TraceState() {
    process_start();  // pin the timebase as early as possible
    const char* env = std::getenv("AFL_TRACE_JSONL");
    if (env != nullptr && env[0] != '\0') open(env);
  }

  void open(const std::string& path) {
    std::lock_guard<std::mutex> lock(mu);
    if (out.is_open()) out.close();
    if (path.empty()) {
      enabled.store(false, std::memory_order_relaxed);
      return;
    }
    out.open(path, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "[WARN] obs: cannot open trace file %s; tracing disabled\n",
                   path.c_str());
      enabled.store(false, std::memory_order_relaxed);
      return;
    }
    enabled.store(true, std::memory_order_relaxed);
  }

  void write_line(const std::string& line) {
    std::lock_guard<std::mutex> lock(mu);
    if (!out.is_open()) return;
    out << line << '\n';
    out.flush();  // trace volume is low (control-plane events, not kernels)
  }
};

TraceState& state() {
  static TraceState* s = new TraceState();  // leaked: usable during shutdown
  return *s;
}

void append_number(std::string& buf, double v) {
  if (!std::isfinite(v)) {
    buf += '0';
    return;
  }
  char tmp[32];
  std::snprintf(tmp, sizeof(tmp), "%.6g", v);
  buf += tmp;
}

}  // namespace

bool trace_enabled() { return state().enabled.load(std::memory_order_relaxed); }

void set_trace_path(const std::string& path) { state().open(path); }

double trace_now_ms() {
  return std::chrono::duration<double, std::milli>(clock::now() - process_start())
      .count();
}

TraceEvent::TraceEvent(std::string_view kind) : enabled_(trace_enabled()) {
  if (!enabled_) return;
  buf_.reserve(160);
  buf_ += "{\"ts_ms\":";
  append_number(buf_, trace_now_ms());
  buf_ += ",\"kind\":\"";
  buf_ += json_escape(kind);
  buf_ += '"';
}

TraceEvent::~TraceEvent() { emit(); }

TraceEvent& TraceEvent::field(std::string_view key, double v) {
  if (!enabled_) return *this;
  buf_ += ",\"";
  buf_ += json_escape(key);
  buf_ += "\":";
  append_number(buf_, v);
  return *this;
}

TraceEvent& TraceEvent::field(std::string_view key, std::uint64_t v) {
  if (!enabled_) return *this;
  buf_ += ",\"";
  buf_ += json_escape(key);
  buf_ += "\":";
  buf_ += std::to_string(v);
  return *this;
}

TraceEvent& TraceEvent::field(std::string_view key, std::int64_t v) {
  if (!enabled_) return *this;
  buf_ += ",\"";
  buf_ += json_escape(key);
  buf_ += "\":";
  buf_ += std::to_string(v);
  return *this;
}

TraceEvent& TraceEvent::field(std::string_view key, bool v) {
  if (!enabled_) return *this;
  buf_ += ",\"";
  buf_ += json_escape(key);
  buf_ += "\":";
  buf_ += v ? "true" : "false";
  return *this;
}

TraceEvent& TraceEvent::field(std::string_view key, std::string_view v) {
  if (!enabled_) return *this;
  buf_ += ",\"";
  buf_ += json_escape(key);
  buf_ += "\":\"";
  buf_ += json_escape(v);
  buf_ += '"';
  return *this;
}

TraceEvent& TraceEvent::field(std::string_view key, const std::vector<double>& v) {
  if (!enabled_) return *this;
  buf_ += ",\"";
  buf_ += json_escape(key);
  buf_ += "\":[";
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i) buf_ += ',';
    append_number(buf_, v[i]);
  }
  buf_ += ']';
  return *this;
}

void TraceEvent::emit() {
  if (!enabled_ || emitted_) return;
  emitted_ = true;
  buf_ += '}';
  state().write_line(buf_);
}

TraceSpan::~TraceSpan() {
  if (ev_.enabled()) {
    ev_.field("dur_ms", std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - start_)
                            .count());
  }
  ev_.emit();
}

}  // namespace afl::obs
