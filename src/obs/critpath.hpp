#pragma once
// Critical-path analysis over afl.trace.v2 dispatch-lifecycle records
// (engine/lifecycle.hpp, docs/OBSERVABILITY.md).
//
// The lifecycle stream is a causal DAG on the run's virtual clock: each
// dispatch is a chain select -> downlink -> compute -> uplink -> buffer_wait
// -> commit (or a terminal drop), and each commit/flush barrier joins the
// chains that fed it. The analyzer reconstructs that DAG and walks it
// backwards from the run's final simulated instant: at each cursor it picks
// the dispatch whose phases reach the cursor (the one that determined it),
// blames that dispatch's phase durations — transfer phases split into wire
// time and retry backoff — and continues from the dispatch's select instant.
// Virtual-clock gaps no phase covers are blamed "unattributed", so
// attributed + unattributed always sums to the anchor time.
//
// The same walk explains each time-to-accuracy crossing: a TTA threshold is
// reached at an eval point, and the chain into that eval point's commit
// instant is exactly the chain the full walk passes through at that time.

#include <cstddef>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace afl::obs {

/// One parsed `lifecycle` record. dispatch < 0 = a dispatch-less record
/// (hierarchical root_wait / root_merge, tagged level = "root").
struct LifecycleRecord {
  long long dispatch = -1;
  long long round = -1;
  long long client = -1;
  std::string phase;
  double t0 = 0.0;
  double t1 = 0.0;
  long long attempts = 0;
  double backoff_s = 0.0;
  long long bytes = 0;
  int shard = -1;
  long long version = -1;
  long long commit_version = -1;
  std::string outcome;  // set on terminal records only
  std::string level;    // "root" on dispatch-less hierarchy records
};

/// Parses one trace record's field map (json_object_fields output) into a
/// LifecycleRecord; nullopt when the record is not kind == "lifecycle".
std::optional<LifecycleRecord> parse_lifecycle(
    const std::map<std::string, std::string>& fields);

/// One step of the reconstructed critical path (commit-time descending).
struct CriticalStep {
  long long dispatch = -1;  // -1 on unattributed gap steps
  long long client = -1;
  int shard = -1;
  std::string phase;  // "downlink", "backoff", ..., or "unattributed"
  double t0 = 0.0;
  double t1 = 0.0;
  double blame = 0.0;  // seconds charged to this step (t1 - t0)
};

struct CriticalPathResult {
  double total = 0.0;         // the anchor: final simulated seconds analyzed
  double attributed = 0.0;    // seconds blamed on named lifecycle phases
  double unattributed = 0.0;  // virtual-clock gaps no phase covers
  /// Blame per phase name (downlink/compute/uplink/backoff/buffer_wait/...,
  /// plus "unattributed").
  std::map<std::string, double> by_phase;
  /// Blame per aggregation shard (key -1 = untagged dispatches).
  std::map<int, double> by_shard;
  /// Blame per client of the dispatches on the path.
  std::map<long long, double> by_client;
  /// The full chain, ordered from the final instant backwards.
  std::vector<CriticalStep> steps;
};

/// Walks the critical path of one run's lifecycle records back from
/// `sim_seconds` (<= 0 auto-derives the anchor from the latest record).
/// Records may arrive in any order; dispatch-less root records participate
/// as barrier phases of their shard.
CriticalPathResult critical_path(const std::vector<LifecycleRecord>& records,
                                 double sim_seconds);

}  // namespace afl::obs
