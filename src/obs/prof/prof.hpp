#pragma once
// Scoped-span profiler: where do the cycles go?
//
// AFL_PROFILE=1 (or set_profiling(true)) arms the profiler; with it off a
// ProfileSpan costs one relaxed atomic load, so the hot paths stay
// instrumented permanently (tensor kernels, engine phases, codec, checkpoint
// I/O) without perturbing production runs — RunResult stays byte-identical
// either way, profiling only ever *observes*.
//
// Each thread keeps a stack of active spans, so nesting attributes time
// hierarchically: a span's `wall` is its total inclusive time, its `self` is
// wall minus the wall of its direct children. Per span name the profiler
// aggregates count, wall, self, thread-CPU time, and (when the host allows
// perf_event_open — see perf_counters.hpp) a hardware-counter delta:
// cycles, instructions, cache references/misses, branch misses.
//
// Aggregates are exported four ways:
//   - snapshot() / render_table() / print_report() for code and stderr,
//   - publish() into a metrics Registry (-> Prometheus /metrics and
//     /metrics.json via the existing exposition layer),
//   - emit_trace_records(): one `profile` record per span in AFL_TRACE_JSONL.
// The FL runtime publishes + emits automatically at run end and prints the
// table at process exit (see docs/PROFILING.md).

#include <array>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/prof/perf_counters.hpp"

namespace afl::obs::prof {

/// Is the profiler armed? First call reads AFL_PROFILE.
bool profiling_enabled();
void set_profiling(bool on);

/// Aggregated statistics of one span name, merged across threads.
struct SpanStats {
  std::string name;
  std::uint64_t count = 0;
  double wall_seconds = 0.0;  // inclusive
  double self_seconds = 0.0;  // wall minus direct children
  double cpu_seconds = 0.0;   // thread CPU time, inclusive
  std::array<std::uint64_t, kNumHwCounters> hw{};
  std::uint32_t hw_mask = 0;  // which hw slots counted (0 = clock-only)

  bool has_hw(std::size_t id) const { return (hw_mask >> id) & 1u; }
  /// Instructions per cycle; 0 when either counter is missing.
  double ipc() const;
};

/// RAII span. `name` must outlive the profiler (string literals in
/// practice). Cheap no-op while profiling is off.
class ProfileSpan {
 public:
  explicit ProfileSpan(const char* name);
  ~ProfileSpan();
  ProfileSpan(const ProfileSpan&) = delete;
  ProfileSpan& operator=(const ProfileSpan&) = delete;

 private:
  bool active_;
};

/// Merged per-span aggregates, sorted by total wall time descending.
std::vector<SpanStats> snapshot();

/// Drops every aggregate (the arming state is untouched).
void reset();

/// Were any spans recorded since the last reset()?
bool has_data();

/// Writes the aggregates into `registry` as gauges:
/// afl.prof.<span>.count / .wall.seconds / .self.seconds / .cpu.seconds,
/// plus .cycles / .instructions / .ipc when hardware counters ran.
/// Re-publishing after Registry::reset() restores the values — the profiler
/// keeps its own state.
void publish(Registry& registry);

/// Emits one `profile` trace record per span into AFL_TRACE_JSONL
/// (no-op when tracing is off).
void emit_trace_records();

/// Markdown-ish fixed-width table of snapshot(); "" when no data.
std::string render_table();

/// Prints render_table() to `out` with a header, plus the counter
/// availability notice. No-op when profiling never recorded anything.
void print_report(std::FILE* out = stderr);

}  // namespace afl::obs::prof

/// Convenience macro so call sites read as one line. Name must be a literal.
#define AFL_PROF_CONCAT_INNER(a, b) a##b
#define AFL_PROF_CONCAT(a, b) AFL_PROF_CONCAT_INNER(a, b)
#define AFL_PROF_SPAN(name) \
  ::afl::obs::prof::ProfileSpan AFL_PROF_CONCAT(afl_prof_span_, __LINE__)(name)
