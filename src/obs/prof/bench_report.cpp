#include "obs/prof/bench_report.hpp"

#include <sys/stat.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <thread>

#include "obs/json.hpp"

namespace afl::obs::prof {
namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

bool is_directory(const std::string& path) {
  if (!path.empty() && path.back() == '/') return true;
  struct stat st;
  return stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode);
}

void append_number(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += '0';
    return;
  }
  char tmp[40];
  // Round-trippable but compact; bench numbers are timings and rates.
  std::snprintf(tmp, sizeof(tmp), "%.9g", v);
  out += tmp;
}

void append_string(std::string& out, const std::string& s) {
  out += '"';
  out += json_escape(s);
  out += '"';
}

}  // namespace

std::uint64_t BenchSection::hw_delta(std::size_t id) const {
  if (!has_hw() || !hw_begin.has(id) || !hw_end.has(id)) return 0;
  return hw_end.v[id] > hw_begin.v[id] ? hw_end.v[id] - hw_begin.v[id] : 0;
}

BenchReport::BenchReport(std::string name, int* argc, char** argv)
    : name_(std::move(name)) {
  std::string out;
  if (argc != nullptr && argv != nullptr) {
    for (int i = 1; i < *argc; ++i) {
      if ((std::strcmp(argv[i], "--out") == 0 || std::strcmp(argv[i], "-o") == 0) &&
          i + 1 < *argc) {
        out = argv[i + 1];
        // Splice the pair out so the binary's own arg parsing is unaffected.
        for (int j = i; j + 2 <= *argc; ++j) argv[j] = argv[j + 2];
        *argc -= 2;
        break;
      }
    }
  }
  if (out.empty()) {
    const char* env = std::getenv("AFL_BENCH_JSON");
    if (env != nullptr) out = env;
  }
  if (out.empty()) return;
  if (is_directory(out)) {
    if (out.back() != '/') out += '/';
    path_ = out + "BENCH_" + name_ + ".json";
  } else {
    path_ = out;
  }
}

BenchReport::~BenchReport() {
  if (enabled() && !written_) write();
}

void BenchReport::set_config(const std::string& key, double value) {
  std::string raw;
  append_number(raw, value);
  config_.emplace_back(key, raw);
}

void BenchReport::set_config(const std::string& key, const std::string& value) {
  std::string raw;
  append_string(raw, value);
  config_.emplace_back(key, raw);
}

BenchReport::Scoped::Scoped(BenchReport& report, std::string name)
    : report_(report) {
  section_.name = std::move(name);
  HwCounterGroup* hw = thread_counters();
  if (hw != nullptr) section_.hw_begin = hw->read();
  start_ = now_seconds();
}

void BenchReport::Scoped::close() {
  if (!open_) return;
  open_ = false;
  section_.wall_seconds = now_seconds() - start_;
  HwCounterGroup* hw = thread_counters();
  if (hw != nullptr) section_.hw_end = hw->read();
  report_.sections_.push_back(std::move(section_));
}

BenchReport::Scoped::~Scoped() { close(); }

void BenchReport::Scoped::set_metric(const std::string& key, double value) {
  section_.metrics[key] = value;
}

void BenchReport::add_section(const std::string& name, double wall_seconds,
                              std::map<std::string, double> metrics) {
  BenchSection s;
  s.name = name;
  s.wall_seconds = wall_seconds;
  s.metrics = std::move(metrics);
  sections_.push_back(std::move(s));
}

std::string BenchReport::to_json() const {
  std::string out;
  out.reserve(1024);
  out += "{\"schema\":\"afl.bench.v1\",\"bench\":";
  append_string(out, name_);
  out += ",\"scale\":";
  append_string(out, scale_.empty() ? "unknown" : scale_);
  out += ",\"git\":";
  append_string(out, git_describe());
  out += ",\"host_cores\":";
  out += std::to_string(std::thread::hardware_concurrency());
  out += ",\"counters\":";
  out += counters_available() ? "true" : "false";
  out += ",\"config\":{";
  for (std::size_t i = 0; i < config_.size(); ++i) {
    if (i) out += ',';
    append_string(out, config_[i].first);
    out += ':';
    out += config_[i].second;
  }
  out += "},\"sections\":[";
  for (std::size_t i = 0; i < sections_.size(); ++i) {
    const BenchSection& s = sections_[i];
    if (i) out += ',';
    out += "{\"name\":";
    append_string(out, s.name);
    out += ",\"wall_seconds\":";
    append_number(out, s.wall_seconds);
    if (s.has_hw()) {
      for (std::size_t c = 0; c < kNumHwCounters; ++c) {
        if (!s.hw_begin.has(c) || !s.hw_end.has(c)) continue;
        out += ",\"";
        out += hw_counter_name(c);
        out += "\":";
        out += std::to_string(s.hw_delta(c));
      }
      const std::uint64_t cycles = s.hw_delta(kHwCycles);
      const std::uint64_t instr = s.hw_delta(kHwInstructions);
      if (cycles > 0 && instr > 0) {
        out += ",\"ipc\":";
        append_number(out, static_cast<double>(instr) / static_cast<double>(cycles));
      }
    }
    out += ",\"metrics\":{";
    std::size_t j = 0;
    for (const auto& [key, value] : s.metrics) {
      if (j++) out += ',';
      append_string(out, key);
      out += ':';
      append_number(out, value);
    }
    out += "}}";
  }
  out += "]}";
  return out;
}

bool BenchReport::write() {
  if (!enabled()) return true;
  written_ = true;
  std::ofstream f(path_, std::ios::trunc);
  if (!f) {
    std::fprintf(stderr, "[obs.prof] cannot write bench snapshot %s\n",
                 path_.c_str());
    return false;
  }
  f << to_json() << '\n';
  f.close();
  if (!f) {
    std::fprintf(stderr, "[obs.prof] short write on bench snapshot %s\n",
                 path_.c_str());
    return false;
  }
  std::fprintf(stderr, "bench snapshot written to %s\n", path_.c_str());
  return true;
}

std::string BenchReport::git_describe() {
  std::FILE* pipe = popen("git describe --always --dirty 2>/dev/null", "r");
  if (pipe == nullptr) return "unknown";
  char buf[128] = {0};
  std::string out;
  while (std::fgets(buf, sizeof(buf), pipe) != nullptr) out += buf;
  pclose(pipe);
  while (!out.empty() && (out.back() == '\n' || out.back() == '\r')) out.pop_back();
  return out.empty() ? "unknown" : out;
}

}  // namespace afl::obs::prof
