#pragma once
// Persisted benchmark snapshots: every bench binary can write one
// schema-versioned BENCH_<name>.json describing what it measured — config,
// scale, per-section wall times, hardware counters (cycles / instructions /
// IPC when perf_event_open works, see perf_counters.hpp), throughput
// metrics, and the git revision. `afl-insight bench show|diff` consumes
// these files, and CI diffs fresh snapshots against the checked-in baselines
// under bench/baselines/ — the persisted perf trajectory of the repo.
//
// Output destination (first match wins):
//   1. --out <path> / -o <path> on the bench command line (consumed),
//   2. the AFL_BENCH_JSON environment variable,
//   3. none: the report is disabled and write() is a no-op.
// A path naming a directory (existing, or ending in '/') receives
// BENCH_<name>.json inside it; anything else is used verbatim.
//
// Schema afl.bench.v1:
// {
//   "schema": "afl.bench.v1", "bench": "<name>", "scale": "smoke",
//   "git": "<describe>", "host_cores": N, "counters": true|false,
//   "config": {"rounds": 6, ...},
//   "sections": [{"name": "...", "wall_seconds": 1.2,
//                 "cycles": ..., "instructions": ..., "ipc": ...,   (optional)
//                 "cache_references": ..., "cache_misses": ...,
//                 "branch_misses": ...,
//                 "metrics": {"rounds_per_sec": 5.0, ...}}]
// }

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "obs/prof/perf_counters.hpp"

namespace afl::obs::prof {

/// One timed region of a bench run.
struct BenchSection {
  std::string name;
  double wall_seconds = 0.0;
  HwSample hw_begin, hw_end;  // cumulative samples bracketing the section
  std::map<std::string, double> metrics;

  bool has_hw() const { return hw_begin.valid && hw_end.valid; }
  std::uint64_t hw_delta(std::size_t id) const;
};

class BenchReport {
 public:
  /// `name` becomes BENCH_<name>.json. Scans argv for --out/-o when given
  /// (removing the pair so later arg parsing never sees it), then falls back
  /// to AFL_BENCH_JSON.
  explicit BenchReport(std::string name, int* argc = nullptr,
                       char** argv = nullptr);
  /// Writes on destruction when enabled and not yet written.
  ~BenchReport();
  BenchReport(const BenchReport&) = delete;
  BenchReport& operator=(const BenchReport&) = delete;

  bool enabled() const { return !path_.empty(); }
  const std::string& path() const { return path_; }

  void set_scale(const std::string& scale) { scale_ = scale; }
  void set_config(const std::string& key, double value);
  void set_config(const std::string& key, const std::string& value);

  /// RAII section: measures wall time and a hardware-counter delta between
  /// construction and close()/destruction on the calling thread.
  class Scoped {
   public:
    Scoped(BenchReport& report, std::string name);
    ~Scoped();
    Scoped(const Scoped&) = delete;
    Scoped& operator=(const Scoped&) = delete;

    /// Attach a throughput/quality metric to the section.
    void set_metric(const std::string& key, double value);
    /// Ends the measurement early (destructor then does nothing).
    void close();

   private:
    BenchReport& report_;
    BenchSection section_;
    double start_ = 0.0;
    bool open_ = true;
  };

  /// Non-RAII alternative for pre-measured numbers.
  void add_section(const std::string& name, double wall_seconds,
                   std::map<std::string, double> metrics = {});

  const std::vector<BenchSection>& sections() const { return sections_; }

  /// Serializes and writes the snapshot. Returns false (with a stderr
  /// warning) when the file cannot be written; true when written or when
  /// the report is disabled.
  bool write();

  /// The JSON document (valid regardless of enabled()).
  std::string to_json() const;

  /// `git describe --always --dirty` of the working tree, or "unknown".
  static std::string git_describe();

 private:
  friend class Scoped;
  std::string name_;
  std::string path_;
  std::string scale_;
  std::vector<std::pair<std::string, std::string>> config_;  // key -> raw JSON
  std::vector<BenchSection> sections_;
  bool written_ = false;
};

}  // namespace afl::obs::prof
