#pragma once
// Hardware-counter groups over Linux perf_event_open(2). One HwCounterGroup
// owns a small group of per-thread counters (cycles, instructions,
// cache-references, cache-misses, branch-misses) read together so ratios
// (IPC, miss rates) are consistent.
//
// Availability is best-effort by design: containers commonly block the
// syscall via seccomp, /proc/sys/kernel/perf_event_paranoid can forbid it,
// VMs may virtualize only a subset of events, and non-Linux platforms lack
// it entirely. Every failure degrades to "no counters" — the profiler and
// bench reports then carry wall/CPU time only. The first failure prints a
// one-line stderr notice (once per process) with the errno so operators know
// why their BENCH_*.json has no cycle columns.

#include <array>
#include <cstddef>
#include <cstdint>

namespace afl::obs::prof {

/// Counter slots, in the order they appear in every sample array.
enum HwCounterId : std::size_t {
  kHwCycles = 0,
  kHwInstructions = 1,
  kHwCacheRefs = 2,
  kHwCacheMisses = 3,
  kHwBranchMisses = 4,
};
inline constexpr std::size_t kNumHwCounters = 5;

/// Stable short name of a counter slot ("cycles", "instructions", ...).
const char* hw_counter_name(std::size_t id);

/// One reading of a counter group. `valid` is false when the group could not
/// be opened at all; `mask` has bit i set when slot i actually counted (some
/// hosts expose cycles/instructions but not the cache events).
struct HwSample {
  std::array<std::uint64_t, kNumHwCounters> v{};
  std::uint32_t mask = 0;
  bool valid = false;

  bool has(std::size_t id) const { return (mask >> id) & 1u; }
};

/// A perf counter group bound to the calling thread (pid=0, any CPU,
/// user-space only — works up to perf_event_paranoid=2). Construct on the
/// thread that will be measured; read() returns cumulative counts since
/// construction.
class HwCounterGroup {
 public:
  HwCounterGroup();
  ~HwCounterGroup();
  HwCounterGroup(const HwCounterGroup&) = delete;
  HwCounterGroup& operator=(const HwCounterGroup&) = delete;

  /// True when at least the group leader (cycles) opened.
  bool valid() const { return leader_fd_ >= 0; }
  /// Bitmask of slots that opened (subset of all kNumHwCounters bits).
  std::uint32_t mask() const { return mask_; }

  /// Cumulative counts since construction. Invalid sample when !valid().
  HwSample read() const;

 private:
  int leader_fd_ = -1;
  std::array<int, kNumHwCounters> fds_{};   // -1 when the slot did not open
  std::array<int, kNumHwCounters> slot_of_; // read-buffer position -> slot
  std::size_t opened_ = 0;
  std::uint32_t mask_ = 0;
};

/// Process-wide counter policy: AFL_PROF_COUNTERS=0 (or set_counters_enabled
/// (false), which tests use to force the clock-only fallback) disables the
/// syscall entirely; otherwise groups are opened on demand.
bool counters_enabled();
void set_counters_enabled(bool on);

/// The lazily opened counter group of the calling thread; nullptr when
/// counters are disabled or unavailable on this host. The first thread that
/// fails to open a group records the reason and prints the one-line notice.
HwCounterGroup* thread_counters();

/// True once any thread successfully opened a group; false after a failure
/// or before first use.
bool counters_available();

/// Human-readable reason counters are unavailable ("" while they work or
/// were never tried).
const char* counters_unavailable_reason();

}  // namespace afl::obs::prof
