#include "obs/prof/perf_counters.hpp"

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace afl::obs::prof {
namespace {

std::atomic<bool> g_counters_enabled{[] {
  const char* env = std::getenv("AFL_PROF_COUNTERS");
  return !(env != nullptr && env[0] == '0' && env[1] == '\0');
}()};

std::atomic<bool> g_any_opened{false};
std::atomic<bool> g_noticed{false};
char g_reason[128] = {0};
std::mutex g_reason_mu;

void note_unavailable(const char* what, int err) {
  {
    std::lock_guard<std::mutex> lock(g_reason_mu);
    if (g_reason[0] == '\0') {
      std::snprintf(g_reason, sizeof(g_reason), "%s: %s", what,
                    err != 0 ? std::strerror(err) : "unsupported");
    }
  }
  if (!g_noticed.exchange(true)) {
    std::fprintf(stderr,
                 "[obs.prof] hardware counters unavailable (%s); spans fall "
                 "back to wall/CPU clocks only\n",
                 g_reason);
  }
}

#if defined(__linux__)
long perf_open(struct perf_event_attr* attr, pid_t pid, int cpu, int group_fd,
               unsigned long flags) {
  return syscall(SYS_perf_event_open, attr, pid, cpu, group_fd, flags);
}

struct EventSpec {
  std::uint32_t type;
  std::uint64_t config;
};

constexpr EventSpec kEvents[kNumHwCounters] = {
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_REFERENCES},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_MISSES},
};
#endif

}  // namespace

const char* hw_counter_name(std::size_t id) {
  switch (id) {
    case kHwCycles: return "cycles";
    case kHwInstructions: return "instructions";
    case kHwCacheRefs: return "cache_references";
    case kHwCacheMisses: return "cache_misses";
    case kHwBranchMisses: return "branch_misses";
  }
  return "?";
}

HwCounterGroup::HwCounterGroup() {
  fds_.fill(-1);
  slot_of_.fill(-1);
#if defined(__linux__)
  if (!counters_enabled()) {
    note_unavailable("disabled (AFL_PROF_COUNTERS=0)", 0);
    return;
  }
  for (std::size_t i = 0; i < kNumHwCounters; ++i) {
    struct perf_event_attr attr;
    std::memset(&attr, 0, sizeof(attr));
    attr.size = sizeof(attr);
    attr.type = kEvents[i].type;
    attr.config = kEvents[i].config;
    attr.disabled = (i == 0) ? 1 : 0;  // leader starts the whole group
    attr.exclude_kernel = 1;           // stay legal at perf_event_paranoid<=2
    attr.exclude_hv = 1;
    attr.read_format = PERF_FORMAT_GROUP;
    const long fd = perf_open(&attr, /*pid=*/0, /*cpu=*/-1,
                              /*group_fd=*/leader_fd_, /*flags=*/0);
    if (fd < 0) {
      if (i == 0) {
        // No leader, no group: the host blocks perf entirely.
        note_unavailable("perf_event_open", errno);
        return;
      }
      continue;  // partial hosts (VMs) keep whatever slots did open
    }
    if (i == 0) leader_fd_ = static_cast<int>(fd);
    fds_[i] = static_cast<int>(fd);
    slot_of_[opened_] = static_cast<int>(i);
    ++opened_;
    mask_ |= 1u << i;
  }
  ioctl(leader_fd_, PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
  ioctl(leader_fd_, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
  g_any_opened.store(true, std::memory_order_relaxed);
#else
  note_unavailable("perf_event_open is Linux-only", 0);
#endif
}

HwCounterGroup::~HwCounterGroup() {
#if defined(__linux__)
  for (int fd : fds_) {
    if (fd >= 0) close(fd);
  }
#endif
}

HwSample HwCounterGroup::read() const {
  HwSample s;
#if defined(__linux__)
  if (leader_fd_ < 0) return s;
  // PERF_FORMAT_GROUP layout: u64 nr, then one u64 per opened member in
  // open order.
  std::uint64_t buf[1 + kNumHwCounters] = {0};
  const ssize_t n = ::read(leader_fd_, buf, sizeof(buf));
  if (n < static_cast<ssize_t>(sizeof(std::uint64_t))) return s;
  const std::uint64_t nr = buf[0];
  for (std::uint64_t j = 0; j < nr && j < opened_; ++j) {
    const int slot = slot_of_[j];
    if (slot >= 0) s.v[static_cast<std::size_t>(slot)] = buf[1 + j];
  }
  s.mask = mask_;
  s.valid = true;
#endif
  return s;
}

bool counters_enabled() {
  return g_counters_enabled.load(std::memory_order_relaxed);
}

void set_counters_enabled(bool on) {
  g_counters_enabled.store(on, std::memory_order_relaxed);
}

HwCounterGroup* thread_counters() {
  if (!counters_enabled()) {
    if (!g_noticed.load(std::memory_order_relaxed)) {
      note_unavailable("disabled (AFL_PROF_COUNTERS=0)", 0);
    }
    return nullptr;
  }
  thread_local HwCounterGroup group;
  return group.valid() ? &group : nullptr;
}

bool counters_available() {
  return g_any_opened.load(std::memory_order_relaxed);
}

const char* counters_unavailable_reason() {
  std::lock_guard<std::mutex> lock(g_reason_mu);
  return g_reason;
}

}  // namespace afl::obs::prof
