#include "obs/prof/prof.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <map>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "obs/trace.hpp"

namespace afl::obs::prof {
namespace {

std::uint64_t wall_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::uint64_t cpu_now_ns() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  struct timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0;
  return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
#else
  return 0;
#endif
}

/// Running totals of one span name on one thread (or orphaned from an exited
/// thread).
struct Accum {
  std::uint64_t count = 0;
  std::uint64_t wall_ns = 0;
  std::uint64_t self_ns = 0;
  std::uint64_t cpu_ns = 0;
  std::array<std::uint64_t, kNumHwCounters> hw{};
  std::uint32_t hw_mask = 0;

  void merge(const Accum& o) {
    count += o.count;
    wall_ns += o.wall_ns;
    self_ns += o.self_ns;
    cpu_ns += o.cpu_ns;
    for (std::size_t i = 0; i < kNumHwCounters; ++i) hw[i] += o.hw[i];
    hw_mask |= o.hw_mask;
  }
};

/// One live span on a thread's stack.
struct Frame {
  const char* name;
  std::uint64_t wall_start;
  std::uint64_t cpu_start;
  HwSample hw_start;
  std::uint64_t child_wall_ns = 0;
};

struct ThreadState;

/// Process-wide profiler state. Leaked so exit-time reporting stays safe.
struct Global {
  std::mutex mu;
  std::vector<ThreadState*> threads;
  std::map<std::string, Accum> orphans;  // flushed from exited threads
};

Global& global() {
  static Global* g = new Global();
  return *g;
}

struct ThreadState {
  std::mutex mu;  // guards accum against snapshot() readers
  std::unordered_map<const char*, Accum> accum;
  std::vector<Frame> stack;

  ThreadState() {
    Global& g = global();
    std::lock_guard<std::mutex> lock(g.mu);
    g.threads.push_back(this);
  }

  ~ThreadState() {
    // Thread is going away: move its totals into the orphan pool so
    // snapshot() keeps seeing them (lock order: global before thread).
    Global& g = global();
    std::lock_guard<std::mutex> glock(g.mu);
    std::lock_guard<std::mutex> tlock(mu);
    for (const auto& [name, a] : accum) g.orphans[name].merge(a);
    g.threads.erase(std::remove(g.threads.begin(), g.threads.end(), this),
                    g.threads.end());
  }
};

ThreadState& thread_state() {
  thread_local ThreadState state;
  return state;
}

// -1 = unresolved (read AFL_PROFILE on first query), 0 = off, 1 = on.
std::atomic<int> g_enabled{-1};
std::atomic<bool> g_report_armed{false};

void report_at_exit() { print_report(stderr); }

void arm_report_at_exit() {
  if (!g_report_armed.exchange(true)) std::atexit(report_at_exit);
}

}  // namespace

bool profiling_enabled() {
  int v = g_enabled.load(std::memory_order_relaxed);
  if (v < 0) {
    const char* e = std::getenv("AFL_PROFILE");
    const bool on =
        e != nullptr && e[0] != '\0' && !(e[0] == '0' && e[1] == '\0');
    int expected = -1;
    if (g_enabled.compare_exchange_strong(expected, on ? 1 : 0)) {
      if (on) arm_report_at_exit();
      v = on ? 1 : 0;
    } else {
      v = expected;
    }
  }
  return v > 0;
}

void set_profiling(bool on) {
  g_enabled.store(on ? 1 : 0, std::memory_order_relaxed);
  if (on) arm_report_at_exit();
}

ProfileSpan::ProfileSpan(const char* name) : active_(profiling_enabled()) {
  if (!active_) return;
  ThreadState& ts = thread_state();
  Frame f;
  f.name = name;
  HwCounterGroup* hw = thread_counters();
  if (hw != nullptr) f.hw_start = hw->read();
  f.cpu_start = cpu_now_ns();
  f.wall_start = wall_now_ns();  // last: exclude the setup above from wall
  ts.stack.push_back(f);
}

ProfileSpan::~ProfileSpan() {
  if (!active_) return;
  const std::uint64_t wall_end = wall_now_ns();
  const std::uint64_t cpu_end = cpu_now_ns();
  ThreadState& ts = thread_state();
  if (ts.stack.empty()) return;  // defensive; RAII keeps the stack LIFO
  Frame f = ts.stack.back();
  ts.stack.pop_back();

  const std::uint64_t wall = wall_end > f.wall_start ? wall_end - f.wall_start : 0;
  const std::uint64_t cpu = cpu_end > f.cpu_start ? cpu_end - f.cpu_start : 0;
  if (!ts.stack.empty()) ts.stack.back().child_wall_ns += wall;

  Accum delta;
  delta.count = 1;
  delta.wall_ns = wall;
  delta.self_ns = wall > f.child_wall_ns ? wall - f.child_wall_ns : 0;
  delta.cpu_ns = cpu;
  if (f.hw_start.valid) {
    HwCounterGroup* hw = thread_counters();
    if (hw != nullptr) {
      const HwSample end = hw->read();
      if (end.valid) {
        delta.hw_mask = end.mask & f.hw_start.mask;
        for (std::size_t i = 0; i < kNumHwCounters; ++i) {
          if ((delta.hw_mask >> i) & 1u) {
            delta.hw[i] = end.v[i] > f.hw_start.v[i] ? end.v[i] - f.hw_start.v[i] : 0;
          }
        }
      }
    }
  }
  std::lock_guard<std::mutex> lock(ts.mu);
  ts.accum[f.name].merge(delta);
}

double SpanStats::ipc() const {
  if (!has_hw(kHwCycles) || !has_hw(kHwInstructions) || hw[kHwCycles] == 0) {
    return 0.0;
  }
  return static_cast<double>(hw[kHwInstructions]) /
         static_cast<double>(hw[kHwCycles]);
}

std::vector<SpanStats> snapshot() {
  std::map<std::string, Accum> merged;
  {
    Global& g = global();
    std::lock_guard<std::mutex> glock(g.mu);
    merged = g.orphans;
    for (ThreadState* ts : g.threads) {
      std::lock_guard<std::mutex> tlock(ts->mu);
      for (const auto& [name, a] : ts->accum) merged[name].merge(a);
    }
  }
  std::vector<SpanStats> out;
  out.reserve(merged.size());
  for (const auto& [name, a] : merged) {
    SpanStats s;
    s.name = name;
    s.count = a.count;
    s.wall_seconds = static_cast<double>(a.wall_ns) * 1e-9;
    s.self_seconds = static_cast<double>(a.self_ns) * 1e-9;
    s.cpu_seconds = static_cast<double>(a.cpu_ns) * 1e-9;
    s.hw = a.hw;
    s.hw_mask = a.hw_mask;
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end(), [](const SpanStats& a, const SpanStats& b) {
    return a.wall_seconds > b.wall_seconds ||
           (a.wall_seconds == b.wall_seconds && a.name < b.name);
  });
  return out;
}

void reset() {
  Global& g = global();
  std::lock_guard<std::mutex> glock(g.mu);
  g.orphans.clear();
  for (ThreadState* ts : g.threads) {
    std::lock_guard<std::mutex> tlock(ts->mu);
    ts->accum.clear();
  }
}

bool has_data() {
  Global& g = global();
  std::lock_guard<std::mutex> glock(g.mu);
  if (!g.orphans.empty()) return true;
  for (ThreadState* ts : g.threads) {
    std::lock_guard<std::mutex> tlock(ts->mu);
    if (!ts->accum.empty()) return true;
  }
  return false;
}

void publish(Registry& registry) {
  for (const SpanStats& s : snapshot()) {
    const std::string base = "afl.prof." + s.name;
    registry.gauge(base + ".count").set(static_cast<double>(s.count));
    registry.gauge(base + ".wall.seconds").set(s.wall_seconds);
    registry.gauge(base + ".self.seconds").set(s.self_seconds);
    registry.gauge(base + ".cpu.seconds").set(s.cpu_seconds);
    if (s.has_hw(kHwCycles)) {
      registry.gauge(base + ".cycles").set(static_cast<double>(s.hw[kHwCycles]));
    }
    if (s.has_hw(kHwInstructions)) {
      registry.gauge(base + ".instructions")
          .set(static_cast<double>(s.hw[kHwInstructions]));
    }
    if (s.ipc() > 0.0) registry.gauge(base + ".ipc").set(s.ipc());
  }
}

void emit_trace_records() {
  if (!trace_enabled()) return;
  for (const SpanStats& s : snapshot()) {
    TraceEvent ev("profile");
    ev.field("span", std::string_view(s.name))
        .field("count", static_cast<std::uint64_t>(s.count))
        .field("wall_ms", s.wall_seconds * 1e3)
        .field("self_ms", s.self_seconds * 1e3)
        .field("cpu_ms", s.cpu_seconds * 1e3);
    for (std::size_t i = 0; i < kNumHwCounters; ++i) {
      if (s.has_hw(i)) ev.field(hw_counter_name(i), s.hw[i]);
    }
    if (s.ipc() > 0.0) ev.field("ipc", s.ipc());
    ev.emit();
  }
}

std::string render_table() {
  const std::vector<SpanStats> spans = snapshot();
  if (spans.empty()) return "";
  const bool any_hw =
      std::any_of(spans.begin(), spans.end(),
                  [](const SpanStats& s) { return s.hw_mask != 0; });
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line), "%-24s %10s %11s %11s %11s", "span",
                "count", "wall s", "self s", "cpu s");
  out += line;
  if (any_hw) {
    std::snprintf(line, sizeof(line), " %14s %14s %6s", "cycles",
                  "instructions", "ipc");
    out += line;
  }
  out += '\n';
  for (const SpanStats& s : spans) {
    std::snprintf(line, sizeof(line), "%-24s %10llu %11.4f %11.4f %11.4f",
                  s.name.c_str(), static_cast<unsigned long long>(s.count),
                  s.wall_seconds, s.self_seconds, s.cpu_seconds);
    out += line;
    if (any_hw) {
      if (s.has_hw(kHwCycles) && s.has_hw(kHwInstructions)) {
        std::snprintf(line, sizeof(line), " %14llu %14llu %6.2f",
                      static_cast<unsigned long long>(s.hw[kHwCycles]),
                      static_cast<unsigned long long>(s.hw[kHwInstructions]),
                      s.ipc());
      } else {
        std::snprintf(line, sizeof(line), " %14s %14s %6s", "-", "-", "-");
      }
      out += line;
    }
    out += '\n';
  }
  return out;
}

void print_report(std::FILE* out) {
  if (!has_data()) return;
  std::fprintf(out, "\n-- profile spans (AFL_PROFILE=1; self = wall minus children) --\n");
  std::fprintf(out, "%s", render_table().c_str());
  if (!counters_available()) {
    const char* reason = counters_unavailable_reason();
    std::fprintf(out, "hardware counters: unavailable%s%s%s\n",
                 reason[0] ? " (" : "", reason, reason[0] ? ")" : "");
  }
}

}  // namespace afl::obs::prof
