// Design-choice ablation (DESIGN.md §6, not a paper table): fixed-prefix
// width pruning (the paper's scheme, and HeteroFL's) versus FedRolex-style
// rolling-window extraction, versus full AdaptiveFL, on the CIFAR-10 analogue
// with the VGG16-style model. Rolling trains every global parameter
// eventually but sacrifices the stable shared-prefix feature space.

#include "bench_common.hpp"
#include "core/rolling_fl.hpp"
#include "prune/model_pool.hpp"

int main(int argc, char** argv) {
  using namespace afl;
  using namespace afl::bench;
  obs::prof::BenchReport report("ablation_rolling", &argc, argv);
  report.set_scale(bench_scale_name(bench_scale()));
  obs::prof::BenchReport::Scoped run_section(report, "run");
  print_header("Ablation: prefix vs rolling-window sub-model extraction",
               "design-choice ablation (DESIGN.md §6)");

  ExperimentConfig cfg = scaled_config();
  cfg.task = TaskKind::kCifar10Like;
  cfg.model = ModelKind::kMiniVgg;
  cfg.eval_every = std::max<std::size_t>(1, cfg.rounds / 5);
  const ExperimentEnv env = make_env(cfg);

  Table table({"Scheme", "best avg (%)", "best full (%)"});

  const RunResult hetero = run_algorithm(Algorithm::kHeteroFl, env);
  table.add_row({"HeteroFL (static prefix)", pct(hetero.best_avg_acc()),
                 pct(hetero.best_full_acc())});
  std::fflush(stdout);

  RollingFl rolling(env.spec, env.pool_config, env.data, env.devices, env.run);
  const RunResult rolled = rolling.run();
  table.add_row({"FedRolex* (rolling window)", pct(rolled.best_avg_acc()),
                 pct(rolled.best_full_acc())});
  std::fflush(stdout);

  const RunResult adaptive = run_algorithm(Algorithm::kAdaptiveFl, env);
  table.add_row({"AdaptiveFL (fine-grained prefix + RL)",
                 pct(adaptive.best_avg_acc()), pct(adaptive.best_full_acc())});

  std::printf("\n%s\n", table.to_markdown().c_str());
  return 0;
}
