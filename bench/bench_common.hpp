#pragma once
// Shared helpers for the experiment bench binaries. Each bench regenerates
// one table or figure of the paper (see DESIGN.md's experiment index) and
// prints it as a markdown table / series to stdout.
//
// ADAPTIVEFL_BENCH_SCALE=smoke (default) runs seconds-per-cell configs;
// ADAPTIVEFL_BENCH_SCALE=full runs longer configs closer to the paper's
// regime. Individual knobs can be overridden via AFL_ROUNDS / AFL_CLIENTS /
// AFL_SAMPLES / AFL_EPOCHS.

#include <cstdio>
#include <string>

#include "core/experiment.hpp"
#include "util/env.hpp"
#include "util/table.hpp"

namespace afl::bench {

/// Baseline experiment configuration at the selected scale.
inline ExperimentConfig scaled_config() {
  ExperimentConfig cfg;
  const BenchScale scale = bench_scale();
  if (scale == BenchScale::kFull) {
    cfg.num_clients = 100;  // the paper's CIFAR population
    cfg.clients_per_round = 10;
    cfg.samples_per_client = 20;
    cfg.test_samples = 800;
    cfg.rounds = 200;
    cfg.local_epochs = 2;
  } else {
    cfg.num_clients = 30;
    cfg.clients_per_round = 5;
    cfg.samples_per_client = 13;
    cfg.test_samples = 320;
    cfg.rounds = 100;
    cfg.local_epochs = 2;
  }
  cfg.rounds = static_cast<std::size_t>(env_or("AFL_ROUNDS", static_cast<int>(cfg.rounds)));
  cfg.num_clients =
      static_cast<std::size_t>(env_or("AFL_CLIENTS", static_cast<int>(cfg.num_clients)));
  cfg.samples_per_client =
      static_cast<std::size_t>(env_or("AFL_SAMPLES", static_cast<int>(cfg.samples_per_client)));
  cfg.local_epochs =
      static_cast<std::size_t>(env_or("AFL_EPOCHS", static_cast<int>(cfg.local_epochs)));
  return cfg;
}

inline void print_header(const std::string& what, const std::string& paper_ref) {
  std::printf("== %s ==\n", what.c_str());
  std::printf("reproduces: %s | scale: %s | see EXPERIMENTS.md for paper-vs-measured\n\n",
              paper_ref.c_str(), bench_scale_name(bench_scale()));
}

inline std::string pct(double v) { return Table::fmt_pct(v); }

}  // namespace afl::bench
