#pragma once
// Shared helpers for the experiment bench binaries. Each bench regenerates
// one table or figure of the paper (see DESIGN.md's experiment index) and
// prints it as a markdown table / series to stdout.
//
// ADAPTIVEFL_BENCH_SCALE=smoke (default) runs seconds-per-cell configs;
// ADAPTIVEFL_BENCH_SCALE=full runs longer configs closer to the paper's
// regime. Individual knobs can be overridden via the AFL_* variables read by
// apply_env_overrides() below.
//
// Every bench can persist a BENCH_<name>.json snapshot (--out <path> or
// AFL_BENCH_JSON, see obs/prof/bench_report.hpp); `afl-insight bench
// show|diff` consumes the snapshots and CI gates on them.

#include <cstdio>
#include <string>

#include "core/experiment.hpp"
#include "obs/prof/bench_report.hpp"
#include "util/env.hpp"
#include "util/table.hpp"

namespace afl::bench {

/// Applies the AFL_* scale-override environment variables to `cfg`. This is
/// the one place the override set is defined — every bench (and the README)
/// honors exactly: AFL_ROUNDS, AFL_CLIENTS, AFL_CLIENTS_PER_ROUND,
/// AFL_SAMPLES, AFL_TEST_SAMPLES, AFL_EPOCHS.
inline void apply_env_overrides(ExperimentConfig& cfg) {
  cfg.rounds =
      static_cast<std::size_t>(env_or("AFL_ROUNDS", static_cast<int>(cfg.rounds)));
  cfg.num_clients =
      static_cast<std::size_t>(env_or("AFL_CLIENTS", static_cast<int>(cfg.num_clients)));
  cfg.clients_per_round = static_cast<std::size_t>(
      env_or("AFL_CLIENTS_PER_ROUND", static_cast<int>(cfg.clients_per_round)));
  cfg.samples_per_client =
      static_cast<std::size_t>(env_or("AFL_SAMPLES", static_cast<int>(cfg.samples_per_client)));
  cfg.test_samples = static_cast<std::size_t>(
      env_or("AFL_TEST_SAMPLES", static_cast<int>(cfg.test_samples)));
  cfg.local_epochs =
      static_cast<std::size_t>(env_or("AFL_EPOCHS", static_cast<int>(cfg.local_epochs)));
}

/// Baseline experiment configuration at the selected scale, with the AFL_*
/// environment overrides already applied.
inline ExperimentConfig scaled_config() {
  ExperimentConfig cfg;
  const BenchScale scale = bench_scale();
  if (scale == BenchScale::kFull) {
    cfg.num_clients = 100;  // the paper's CIFAR population
    cfg.clients_per_round = 10;
    cfg.samples_per_client = 20;
    cfg.test_samples = 800;
    cfg.rounds = 200;
    cfg.local_epochs = 2;
  } else {
    cfg.num_clients = 30;
    cfg.clients_per_round = 5;
    cfg.samples_per_client = 13;
    cfg.test_samples = 320;
    cfg.rounds = 100;
    cfg.local_epochs = 2;
  }
  apply_env_overrides(cfg);
  return cfg;
}

/// Stamps the shared snapshot fields: scale name plus the experiment knobs
/// every bench varies. Call once after scaled_config()/apply_env_overrides().
inline void describe_config(obs::prof::BenchReport& report,
                            const ExperimentConfig& cfg) {
  report.set_scale(bench_scale_name(bench_scale()));
  report.set_config("rounds", static_cast<double>(cfg.rounds));
  report.set_config("num_clients", static_cast<double>(cfg.num_clients));
  report.set_config("clients_per_round", static_cast<double>(cfg.clients_per_round));
  report.set_config("samples_per_client", static_cast<double>(cfg.samples_per_client));
  report.set_config("test_samples", static_cast<double>(cfg.test_samples));
  report.set_config("local_epochs", static_cast<double>(cfg.local_epochs));
}

inline void print_header(const std::string& what, const std::string& paper_ref) {
  std::printf("== %s ==\n", what.c_str());
  std::printf("reproduces: %s | scale: %s | see EXPERIMENTS.md for paper-vs-measured\n\n",
              paper_ref.c_str(), bench_scale_name(bench_scale()));
}

inline std::string pct(double v) { return Table::fmt_pct(v); }

}  // namespace afl::bench
