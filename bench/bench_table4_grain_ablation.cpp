// Table 4: ablation of fine-grained (p = 3) vs coarse-grained (p = 1) model
// pruning for AdaptiveFL on the CIFAR-10/100 analogues with both model
// families under IID / alpha=0.6 / alpha=0.3 partitions.

#include <vector>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace afl;
  using namespace afl::bench;
  obs::prof::BenchReport report("table4_grain_ablation", &argc, argv);
  report.set_scale(bench_scale_name(bench_scale()));
  obs::prof::BenchReport::Scoped run_section(report, "run");
  print_header("Table 4: fine- vs coarse-grained pruning (global acc, %)",
               "Table 4");

  struct Dist {
    const char* name;
    Partition partition;
    double alpha;
  };
  const Dist dists[] = {{"IID", Partition::kIid, 0},
                        {"a=0.6", Partition::kDirichlet, 0.6},
                        {"a=0.3", Partition::kDirichlet, 0.3}};

  Table table({"Dataset", "Model", "Grained", "IID", "a=0.6", "a=0.3"});
  for (TaskKind task : {TaskKind::kCifar10Like, TaskKind::kCifar100Like}) {
    for (ModelKind model : {ModelKind::kMiniVgg, ModelKind::kMiniResnet}) {
      double fine[3], coarse[3];
      for (std::size_t p : {std::size_t{3}, std::size_t{1}}) {
        for (int d = 0; d < 3; ++d) {
          ExperimentConfig cfg = scaled_config();
          cfg.task = task;
          cfg.model = model;
          cfg.partition = dists[d].partition;
          cfg.alpha = dists[d].alpha;
          cfg.pool_p = p;
          cfg.eval_every = std::max<std::size_t>(1, cfg.rounds / 5);
          const ExperimentEnv env = make_env(cfg);
          const double acc = run_algorithm(Algorithm::kAdaptiveFl, env).best_full_acc();
          (p == 3 ? fine : coarse)[d] = acc;
          std::fflush(stdout);
        }
      }
      table.add_row({task_name(task), model_name(model), "coarse",
                     pct(coarse[0]), pct(coarse[1]), pct(coarse[2])});
      char b0[32], b1[32], b2[32];
      std::snprintf(b0, sizeof(b0), "%s (%+.2f)", pct(fine[0]).c_str(),
                    100 * (fine[0] - coarse[0]));
      std::snprintf(b1, sizeof(b1), "%s (%+.2f)", pct(fine[1]).c_str(),
                    100 * (fine[1] - coarse[1]));
      std::snprintf(b2, sizeof(b2), "%s (%+.2f)", pct(fine[2]).c_str(),
                    100 * (fine[2] - coarse[2]));
      table.add_row({task_name(task), model_name(model), "fine", b0, b1, b2});
      std::printf("  done: %s / %s\n", task_name(task), model_name(model));
      std::fflush(stdout);
    }
  }
  std::printf("\n%s\n", table.to_markdown().c_str());
  return 0;
}
