// Hierarchical scale-out bench (docs/HIERARCHY.md): how far the client
// population can grow with lazy data shards, sparse RL tables, and the
// sharded hierarchical engine. For each population size it runs AdaptiveFL
// under HierEngine (8 shards, sync every round) and reports rounds/sec plus
// the process RSS — compared against what *storing* every client shard would
// have cost, which is the sublinear-memory claim the RSS gauge verifies.
//
// Smoke scale sweeps 10^3..10^5 clients; full scale adds 10^6. Emits one
// afl.bench.v1 section per population (clients / rounds_per_sec / rss_mb /
// peak_rss_mb) for `afl-insight bench diff` gating.

#include <cstdio>
#include <memory>
#include <vector>

#include "arch/zoo.hpp"
#include "bench_common.hpp"
#include "hier/config.hpp"
#include "obs/rss.hpp"
#include "util/stopwatch.hpp"

namespace {

/// make_env minus the eager dataset: client shards stay lazy (generated on
/// demand inside execute()), only the test set and device fleet materialize.
afl::ExperimentEnv make_lazy_env(const afl::ExperimentConfig& config) {
  using namespace afl;
  ExperimentEnv env;
  env.config = config;
  const SyntheticConfig task_cfg = SyntheticConfig::cifar10_like(config.image_hw);
  env.spec = mini_vgg(task_cfg.num_classes, task_cfg.channels, task_cfg.hw);
  env.pool_config = PoolConfig::defaults_for(env.spec, config.pool_p);

  Rng rng(config.seed);
  auto task = std::make_shared<const SyntheticTask>(task_cfg, rng);
  FederatedConfig fed;
  fed.num_clients = config.num_clients;
  fed.samples_per_client = config.samples_per_client;
  fed.test_samples = config.test_samples;
  env.data = make_federated_lazy(std::move(task), fed, config.seed);

  const ModelPool pool(env.spec, env.pool_config);
  env.devices = make_devices(pool, config.num_clients, config.proportions, rng,
                             config.capacity_jitter);
  env.scalefl_budgets = {tier_capacity(pool, DeviceTier::kStrong),
                         tier_capacity(pool, DeviceTier::kMedium),
                         tier_capacity(pool, DeviceTier::kWeak)};
  env.run.rounds = config.rounds;
  env.run.clients_per_round = config.clients_per_round;
  env.run.local.epochs = config.local_epochs;
  env.run.local.batch_size = config.batch_size;
  env.run.local.lr = config.lr;
  env.run.local.momentum = config.momentum;
  env.run.seed = config.seed + 1;
  env.run.eval_every = config.eval_every;
  return env;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace afl;
  obs::prof::BenchReport report("scaleout", &argc, argv);
  bench::print_header("Hierarchical scale-out: clients vs rounds/sec vs RSS",
                      "scale-out infrastructure (docs/HIERARCHY.md), not a paper table");

  std::vector<std::size_t> populations = {1000, 10000, 100000};
  if (bench_scale() == BenchScale::kFull) populations.push_back(1000000);

  ExperimentConfig base;
  base.image_hw = 8;
  base.samples_per_client = 10;
  base.test_samples = 200;
  base.rounds = 3;
  base.local_epochs = 1;
  base.batch_size = 10;
  base.eval_every = base.rounds;  // eval once; bench the round loop
  bench::apply_env_overrides(base);
  base.eval_every = base.rounds;
  report.set_scale(bench_scale_name(bench_scale()));
  report.set_config("rounds", static_cast<double>(base.rounds));
  report.set_config("samples_per_client",
                    static_cast<double>(base.samples_per_client));
  report.set_config("shards", 8.0);

  // What storing one client's shard would cost: samples * (CHW floats + label).
  const double stored_bytes_per_client =
      static_cast<double>(base.samples_per_client) *
      (3.0 * static_cast<double>(base.image_hw * base.image_hw) * 4.0 + 4.0);

  Table table({"clients", "wall s", "rounds/s", "rss MB", "peak MB",
               "stored-data MB", "acc"});
  int failures = 0;
  for (std::size_t clients : populations) {
    ExperimentConfig cfg = base;
    cfg.num_clients = clients;
    cfg.clients_per_round = std::min<std::size_t>(32, clients);
    ExperimentEnv env = make_lazy_env(cfg);
    hier::HierConfig hier;
    hier.enabled = true;
    hier.shards = 8;
    hier.sync_every = 1;
    env.run.hier = hier;

    obs::prof::BenchReport::Scoped section(report,
                                           "clients_" + std::to_string(clients));
    Stopwatch watch;
    const RunResult result = run_algorithm(Algorithm::kAdaptiveFl, env);
    const double wall = watch.seconds();
    const obs::RssSample rss = obs::read_rss();

    const double rounds_per_sec = static_cast<double>(cfg.rounds) / wall;
    const double rss_mb = static_cast<double>(rss.rss_bytes) / (1024.0 * 1024.0);
    const double peak_mb = static_cast<double>(rss.peak_bytes) / (1024.0 * 1024.0);
    const double stored_mb =
        stored_bytes_per_client * static_cast<double>(clients) / (1024.0 * 1024.0);
    section.set_metric("clients", static_cast<double>(clients));
    section.set_metric("rounds_per_sec", rounds_per_sec);
    section.set_metric("rss_mb", rss_mb);
    section.set_metric("peak_rss_mb", peak_mb);
    section.set_metric("stored_data_mb", stored_mb);
    table.add_row({std::to_string(clients), Table::fmt(wall, 2),
                   Table::fmt(rounds_per_sec, 2), Table::fmt(rss_mb, 1),
                   Table::fmt(peak_mb, 1), Table::fmt(stored_mb, 1),
                   bench::pct(result.final_full_acc)});
    std::printf(
        "{\"bench\":\"scaleout\",\"clients\":%zu,\"rounds\":%zu,"
        "\"wall_seconds\":%.3f,\"rounds_per_sec\":%.3f,\"rss_mb\":%.1f,"
        "\"peak_rss_mb\":%.1f,\"stored_data_mb\":%.1f}\n",
        clients, cfg.rounds, wall, rounds_per_sec, rss_mb, peak_mb, stored_mb);
    if (result.curve.empty()) ++failures;
  }
  std::printf("\n%s\n", table.to_markdown().c_str());
  std::printf(
      "RSS should grow far slower than the stored-data column: lazy shards +\n"
      "sparse RL tables keep per-client state off the heap (docs/HIERARCHY.md).\n");
  return failures == 0 ? 0 : 1;
}
