// Figure 5: ablation of the RL-based client selection on the CIFAR-100
// analogue with the ResNet18-style model (IID):
//   (a) communication waste rate 1 - sum(size(back)) / sum(size(sent))
//   (b) accuracy of the selection-strategy variants
// Variants: +Greed (always dispatch L1), +Random, +C (curiosity only),
// +S (resource only), +CS (full AdaptiveFL).

#include <vector>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace afl;
  using namespace afl::bench;
  obs::prof::BenchReport report("fig5_rl_ablation", &argc, argv);
  report.set_scale(bench_scale_name(bench_scale()));
  obs::prof::BenchReport::Scoped run_section(report, "run");
  print_header("Figure 5: RL client-selection ablation (CIFAR-100*, ResNet18*)",
               "Fig. 5 (a) + (b)");

  ExperimentConfig cfg = scaled_config();
  cfg.task = TaskKind::kCifar100Like;
  cfg.model = ModelKind::kMiniResnet;
  cfg.partition = Partition::kIid;
  cfg.eval_every = std::max<std::size_t>(1, cfg.rounds / 5);
  const ExperimentEnv env = make_env(cfg);

  const Algorithm variants[] = {Algorithm::kAdaptiveFlGreed,
                                Algorithm::kAdaptiveFlRandom,
                                Algorithm::kAdaptiveFlC, Algorithm::kAdaptiveFlS,
                                Algorithm::kAdaptiveFl};

  Table table({"Variant", "comm waste rate (%)", "avg acc (%)", "full acc (%)"});
  for (Algorithm a : variants) {
    const RunResult r = run_algorithm(a, env);
    table.add_row({r.algorithm, pct(r.comm.waste_rate()), pct(r.best_avg_acc()),
                   pct(r.best_full_acc())});
    std::printf("  done: %s\n", algorithm_name(a));
    std::fflush(stdout);
  }
  std::printf("\n%s\n", table.to_markdown().c_str());
  return 0;
}
