// Table 3: performance under different weak:medium:strong device proportions
// (4:3:3, 8:1:1, 1:8:1, 1:1:8) on the CIFAR-10 analogue with the VGG16-style
// model. All-Large ignores device resources, so its column is constant by
// construction (as in the paper).

#include <vector>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace afl;
  using namespace afl::bench;
  obs::prof::BenchReport report("table3_proportions", &argc, argv);
  report.set_scale(bench_scale_name(bench_scale()));
  obs::prof::BenchReport::Scoped run_section(report, "run");
  print_header("Table 3: device-proportion sweep (avg | full, %)", "Table 3");

  const double props[][3] = {{4, 3, 3}, {8, 1, 1}, {1, 8, 1}, {1, 1, 8}};
  const Algorithm algs[] = {Algorithm::kAllLarge, Algorithm::kHeteroFl,
                            Algorithm::kScaleFl, Algorithm::kAdaptiveFl};

  std::vector<std::string> header = {"Algorithm"};
  for (const auto& p : props) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%g:%g:%g avg", p[0], p[1], p[2]);
    header.push_back(buf);
    header.push_back("full");
  }
  Table table(header);

  for (Algorithm a : algs) {
    std::vector<std::string> row = {algorithm_name(a)};
    for (const auto& p : props) {
      ExperimentConfig cfg = scaled_config();
      cfg.task = TaskKind::kCifar10Like;
      cfg.model = ModelKind::kMiniVgg;
      cfg.proportions = TierProportions::parse(p[0], p[1], p[2]);
      cfg.eval_every = std::max<std::size_t>(1, cfg.rounds / 5);
      const ExperimentEnv env = make_env(cfg);
      const RunResult r = run_algorithm(a, env);
      row.push_back(a == Algorithm::kAllLarge ? "-" : pct(r.best_avg_acc()));
      row.push_back(pct(r.best_full_acc()));
      std::fflush(stdout);
    }
    table.add_row(std::move(row));
    std::printf("  done: %s\n", algorithm_name(a));
    std::fflush(stdout);
  }
  std::printf("\n%s\n", table.to_markdown().c_str());
  return 0;
}
