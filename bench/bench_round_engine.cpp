// RoundEngine threading bench: rounds/sec for AdaptiveFL at 1/2/4/8 worker
// threads, plus a determinism cross-check (the curve must be bit-identical
// at every thread count). Emits one JSON summary line per thread count for
// machine consumption alongside the markdown table.
//
// Note: speedup is bounded by the host's core count (reported in the JSON);
// on a single-core container every thread count runs at ~1x.

#include <cstdio>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "util/stopwatch.hpp"

int main(int argc, char** argv) {
  using namespace afl;
  obs::prof::BenchReport report("round_engine", &argc, argv);
  bench::print_header("RoundEngine thread scaling",
                      "engine infrastructure (docs/ENGINE.md), not a paper table");

  ExperimentConfig cfg = bench::scaled_config();
  cfg.rounds = static_cast<std::size_t>(env_or("AFL_ROUNDS", 6));
  cfg.eval_every = cfg.rounds;  // eval once at the end; bench the round loop
  bench::describe_config(report, cfg);
  const ExperimentEnv env = make_env(cfg);
  const unsigned cores = std::thread::hardware_concurrency();

  const std::size_t thread_counts[] = {1, 2, 4, 8};
  Table table({"threads", "wall s", "rounds/s", "speedup", "identical"});
  std::vector<RunResult> results;
  double base_wall = 0.0;
  for (std::size_t threads : thread_counts) {
    ExperimentEnv run_env = env;
    run_env.run.threads = threads;
    obs::prof::BenchReport::Scoped section(report,
                                           "threads=" + std::to_string(threads));
    Stopwatch watch;
    results.push_back(run_algorithm(Algorithm::kAdaptiveFl, run_env));
    const double wall = watch.seconds();
    if (threads == 1) base_wall = wall;

    // Bit-identical check against the single-thread run.
    bool identical = true;
    const RunResult& base = results.front();
    const RunResult& r = results.back();
    identical &= r.curve.size() == base.curve.size();
    for (std::size_t i = 0; identical && i < r.curve.size(); ++i) {
      identical &= r.curve[i].full_acc == base.curve[i].full_acc &&
                   r.curve[i].avg_acc == base.curve[i].avg_acc;
    }
    identical &= r.comm.params_sent() == base.comm.params_sent() &&
                 r.comm.params_returned() == base.comm.params_returned() &&
                 r.failed_trainings == base.failed_trainings;

    const double rounds_per_sec = static_cast<double>(cfg.rounds) / wall;
    section.set_metric("rounds_per_sec", rounds_per_sec);
    section.set_metric("speedup", base_wall / wall);
    section.set_metric("identical_to_1_thread", identical ? 1.0 : 0.0);
    char wall_s[32], rps_s[32], speedup_s[32];
    std::snprintf(wall_s, sizeof(wall_s), "%.2f", wall);
    std::snprintf(rps_s, sizeof(rps_s), "%.2f", rounds_per_sec);
    std::snprintf(speedup_s, sizeof(speedup_s), "%.2fx", base_wall / wall);
    table.add_row({std::to_string(threads), wall_s, rps_s, speedup_s,
                   identical ? "yes" : "NO"});
    std::printf(
        "{\"bench\":\"round_engine\",\"threads\":%zu,\"host_cores\":%u,"
        "\"rounds\":%zu,\"wall_seconds\":%.3f,\"rounds_per_sec\":%.3f,"
        "\"speedup\":%.3f,\"identical_to_1_thread\":%s}\n",
        threads, cores, cfg.rounds, wall, rounds_per_sec, base_wall / wall,
        identical ? "true" : "false");
    if (!identical) {
      std::printf("DETERMINISM VIOLATION at %zu threads\n", threads);
      return 1;
    }
  }
  std::printf("\n%s\n", table.to_markdown().c_str());
  std::printf("final full acc %s | host cores: %u\n",
              bench::pct(results.front().final_full_acc).c_str(), cores);
  return 0;
}
