// Table 2: test accuracy (%) of local ("avg") and global ("full") models for
// All-Large / Decoupled / HeteroFL / ScaleFL / AdaptiveFL, over the
// CIFAR-10 / CIFAR-100 analogues (IID, alpha=0.6, alpha=0.3) and the
// FEMNIST analogue (naturally non-IID), for both VGG16- and ResNet18-style
// models. Reported numbers are each run's best evaluation.

#include <vector>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace afl;
  using namespace afl::bench;
  obs::prof::BenchReport report("table2_accuracy", &argc, argv);
  report.set_scale(bench_scale_name(bench_scale()));
  obs::prof::BenchReport::Scoped run_section(report, "run");
  print_header("Table 2: accuracy comparison (avg | full, %)", "Table 2");

  struct Cell {
    const char* name;
    TaskKind task;
    Partition partition;
    double alpha;
  };
  const Cell cells[] = {
      {"CIFAR-10* IID", TaskKind::kCifar10Like, Partition::kIid, 0},
      {"CIFAR-10* a=0.6", TaskKind::kCifar10Like, Partition::kDirichlet, 0.6},
      {"CIFAR-10* a=0.3", TaskKind::kCifar10Like, Partition::kDirichlet, 0.3},
      {"CIFAR-100* IID", TaskKind::kCifar100Like, Partition::kIid, 0},
      {"CIFAR-100* a=0.6", TaskKind::kCifar100Like, Partition::kDirichlet, 0.6},
      {"CIFAR-100* a=0.3", TaskKind::kCifar100Like, Partition::kDirichlet, 0.3},
      {"FEMNIST*", TaskKind::kFemnistLike, Partition::kNatural, 0},
  };
  const Algorithm algs[] = {Algorithm::kAllLarge, Algorithm::kDecoupled,
                            Algorithm::kHeteroFl, Algorithm::kScaleFl,
                            Algorithm::kAdaptiveFl};

  for (ModelKind model : {ModelKind::kMiniVgg, ModelKind::kMiniResnet}) {
    std::printf("Model: %s\n", model_name(model));
    std::vector<std::string> header = {"Algorithm"};
    for (const Cell& c : cells) {
      header.push_back(std::string(c.name) + " avg");
      header.push_back("full");
    }
    Table table(header);
    std::vector<std::vector<std::string>> rows(5);
    std::vector<ExperimentEnv> envs;
    for (const Cell& c : cells) {
      ExperimentConfig cfg = scaled_config();
      cfg.task = c.task;
      cfg.model = model;
      cfg.partition = c.partition;
      cfg.alpha = c.alpha;
      cfg.eval_every = std::max<std::size_t>(1, cfg.rounds / 5);
      envs.push_back(make_env(cfg));
    }
    for (std::size_t a = 0; a < 5; ++a) {
      rows[a].push_back(algorithm_name(algs[a]));
      for (const ExperimentEnv& env : envs) {
        const RunResult r = run_algorithm(algs[a], env);
        rows[a].push_back(algs[a] == Algorithm::kAllLarge ? "-"
                                                          : pct(r.best_avg_acc()));
        rows[a].push_back(pct(r.best_full_acc()));
      }
      table.add_row(rows[a]);
      std::printf("  done: %s\n", algorithm_name(algs[a]));
      std::fflush(stdout);
    }
    std::printf("\n%s\n", table.to_markdown().c_str());
    std::fflush(stdout);
  }
  return 0;
}
