// Table 1: VGG16 split settings — #PARAMS, #FLOPS and size ratio for the
// pool entries L1, M1-M3, S1-S3 with the paper's exact configuration
// (r_w in {1.0, 0.66, 0.40}, I in {8, 6, 4}). This table is analytic (no
// training) and computed on the real 33.65M-parameter VGG16 shape.
// Also prints the corresponding split of the trainable mini architectures so
// the learning benches' pools are documented.

#include "arch/zoo.hpp"
#include "bench_common.hpp"
#include "prune/model_pool.hpp"

namespace {

void print_pool(const afl::ArchSpec& spec, const afl::PoolConfig& cfg) {
  using namespace afl;
  ModelPool pool(spec, cfg);
  const double full = static_cast<double>(pool.largest().params);
  Table table({"Level", "r_w", "I", "#PARAMS", "#FLOPS", "ratio"});
  for (std::size_t i = pool.size(); i-- > 0;) {
    const PoolEntry& e = pool.entry(i);
    table.add_row({e.label(), e.level == Level::kLarge ? "1.00" : Table::fmt(e.r_w),
                   e.level == Level::kLarge ? "N/A" : std::to_string(e.I),
                   Table::fmt_count(e.params), Table::fmt_count(e.flops),
                   Table::fmt(static_cast<double>(e.params) / full)});
  }
  std::printf("%s (%zu units, tau=%zu)\n%s\n", spec.name.c_str(), spec.num_units(),
              spec.tau, table.to_markdown().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace afl;
  using namespace afl::bench;
  obs::prof::BenchReport report("table1_splits", &argc, argv);
  report.set_scale(bench_scale_name(bench_scale()));
  obs::prof::BenchReport::Scoped run_section(report, "run");
  print_header("Table 1: VGG16 split settings", "Table 1");

  ArchSpec paper_vgg = vgg16(10, 3, 32);
  PoolConfig paper_cfg;
  paper_cfg.p = 3;
  paper_cfg.I_values = {8, 6, 4};
  print_pool(paper_vgg, paper_cfg);

  std::printf("Trainable miniature counterparts (default pools):\n\n");
  for (ArchSpec spec : {mini_vgg(10, 3, 12), mini_resnet(10, 3, 12),
                        mini_mobilenet(22, 1, 12)}) {
    print_pool(spec, PoolConfig::defaults_for(spec));
  }
  return 0;
}
