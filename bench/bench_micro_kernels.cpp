// Micro-benchmarks (google-benchmark) for the computational kernels under
// the FL simulation: GEMM variants, im2col, conv forward/backward, pruning
// and heterogeneous aggregation throughput. Not part of the paper — these
// document the substrate's performance envelope.
//
// Kernel profiling (obs::KernelTimer inside gemm/im2col) is switched on by
// default here so the run ends with a per-kernel histogram summary on stderr;
// AFL_KERNEL_PROFILE=0 restores the production no-op path for overhead
// measurements.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "arch/zoo.hpp"
#include "fl/aggregate.hpp"
#include "net/codec.hpp"
#include "nn/conv2d.hpp"
#include "obs/metrics.hpp"
#include "obs/prof/bench_report.hpp"
#include "obs/timer.hpp"
#include "prune/model_pool.hpp"
#include "tensor/gemm.hpp"
#include "tensor/im2col.hpp"
#include "util/rng.hpp"

namespace {

using namespace afl;

void BM_Gemm(benchmark::State& state) {
  const std::size_t m = static_cast<std::size_t>(state.range(0));
  const std::size_t k = static_cast<std::size_t>(state.range(1));
  const std::size_t n = static_cast<std::size_t>(state.range(2));
  Rng rng(1);
  std::vector<float> a(m * k), b(k * n), c(m * n);
  for (auto& v : a) v = static_cast<float>(rng.normal());
  for (auto& v : b) v = static_cast<float>(rng.normal());
  for (auto _ : state) {
    gemm(a.data(), b.data(), c.data(), m, k, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      static_cast<double>(2 * m * k * n) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate, benchmark::Counter::OneK::kIs1000);
}
BENCHMARK(BM_Gemm)->Args({16, 144, 2880})->Args({64, 576, 720})->Args({64, 256, 64});

void BM_Im2Col(benchmark::State& state) {
  const ConvGeom g{static_cast<std::size_t>(state.range(0)), 12, 12, 3, 1, 1};
  Rng rng(2);
  std::vector<float> img(g.channels * g.height * g.width);
  for (auto& v : img) v = static_cast<float>(rng.normal());
  std::vector<float> cols(g.col_rows() * g.col_cols());
  for (auto _ : state) {
    im2col(img.data(), g, cols.data());
    benchmark::DoNotOptimize(cols.data());
  }
}
BENCHMARK(BM_Im2Col)->Arg(3)->Arg(16)->Arg(64);

void BM_ConvForward(benchmark::State& state) {
  const std::size_t batch = static_cast<std::size_t>(state.range(0));
  Conv2D conv(16, 32, 3, 1, 1);
  Rng rng(3);
  Tensor x = Tensor::randn({batch, 16, 12, 12}, rng);
  for (auto _ : state) {
    Tensor out = conv.forward(x, false);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<long>(state.iterations() * batch));
}
BENCHMARK(BM_ConvForward)->Arg(1)->Arg(20)->Arg(64);

void BM_ConvTrainStep(benchmark::State& state) {
  const std::size_t batch = static_cast<std::size_t>(state.range(0));
  Conv2D conv(16, 32, 3, 1, 1);
  Rng rng(4);
  Tensor x = Tensor::randn({batch, 16, 12, 12}, rng);
  for (auto _ : state) {
    Tensor out = conv.forward(x, true);
    Tensor gin = conv.backward(out);
    benchmark::DoNotOptimize(gin.data());
  }
  state.SetItemsProcessed(static_cast<long>(state.iterations() * batch));
}
BENCHMARK(BM_ConvTrainStep)->Arg(20);

void BM_PoolSplit(benchmark::State& state) {
  ArchSpec spec = mini_vgg(10, 3, 12);
  ModelPool pool(spec, PoolConfig::defaults_for(spec));
  Rng rng(5);
  Model full = build_full_model(spec, &rng);
  ParamSet global = full.export_params();
  const std::size_t entry = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    ParamSet sub = pool.split(global, entry);
    benchmark::DoNotOptimize(&sub);
  }
}
BENCHMARK(BM_PoolSplit)->Arg(0)->Arg(3)->Arg(6);

void BM_HeteroAggregate(benchmark::State& state) {
  ArchSpec spec = mini_vgg(10, 3, 12);
  ModelPool pool(spec, PoolConfig::defaults_for(spec));
  Rng rng(6);
  Model full = build_full_model(spec, &rng);
  ParamSet global = full.export_params();
  std::vector<ClientUpdate> updates;
  const std::size_t n_updates = static_cast<std::size_t>(state.range(0));
  for (std::size_t i = 0; i < n_updates; ++i) {
    updates.push_back({pool.split(global, i % pool.size()), 20});
  }
  for (auto _ : state) {
    ParamSet next = hetero_aggregate(global, updates);
    benchmark::DoNotOptimize(&next);
  }
  state.SetItemsProcessed(static_cast<long>(state.iterations() * n_updates));
}
BENCHMARK(BM_HeteroAggregate)->Arg(4)->Arg(10);

void BM_CodecEncode(benchmark::State& state) {
  const net::Codec codec = static_cast<net::Codec>(state.range(0));
  const std::size_t n = static_cast<std::size_t>(state.range(1));
  Rng rng(7);
  Tensor t = Tensor::randn({n}, rng);
  std::vector<std::uint8_t> buf;
  buf.reserve(net::encoded_payload_size(n, codec));
  for (auto _ : state) {
    buf.clear();
    net::encode_tensor(t, codec, buf);
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetBytesProcessed(
      static_cast<long>(state.iterations() * n * sizeof(float)));
}
BENCHMARK(BM_CodecEncode)
    ->Args({static_cast<long>(net::Codec::kFp16), 64 * 1024})
    ->Args({static_cast<long>(net::Codec::kInt8), 64 * 1024})
    ->Args({static_cast<long>(net::Codec::kInt8), 1024 * 1024});

void BM_CodecDecode(benchmark::State& state) {
  const net::Codec codec = static_cast<net::Codec>(state.range(0));
  const std::size_t n = static_cast<std::size_t>(state.range(1));
  Rng rng(8);
  Tensor t = Tensor::randn({n}, rng);
  std::vector<std::uint8_t> buf;
  net::encode_tensor(t, codec, buf);
  const Shape shape{n};
  for (auto _ : state) {
    Tensor back = net::decode_tensor(buf.data(), buf.size(), shape, codec);
    benchmark::DoNotOptimize(back.data());
  }
  state.SetBytesProcessed(
      static_cast<long>(state.iterations() * n * sizeof(float)));
}
BENCHMARK(BM_CodecDecode)
    ->Args({static_cast<long>(net::Codec::kFp16), 64 * 1024})
    ->Args({static_cast<long>(net::Codec::kInt8), 64 * 1024})
    ->Args({static_cast<long>(net::Codec::kInt8), 1024 * 1024});

// Sparse-uplink kernels (docs/COMPRESSION.md). Gaussian data is the
// worst case for top-k selection: no exact zeros, so nth_element sees a
// fully contested magnitude ordering.

void BM_TopKSelect(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::size_t k =
      net::codec_kept_coords(n, static_cast<net::Codec>(state.range(1)));
  Rng rng(9);
  std::vector<float> data(n);
  for (auto& v : data) v = static_cast<float>(rng.normal());
  for (auto _ : state) {
    std::vector<std::uint32_t> kept = net::topk_select(data.data(), n, k);
    benchmark::DoNotOptimize(kept.data());
  }
  state.SetItemsProcessed(static_cast<long>(state.iterations() * n));
}
BENCHMARK(BM_TopKSelect)
    ->Args({64 * 1024, static_cast<long>(net::Codec::kTopK1)})
    ->Args({64 * 1024, static_cast<long>(net::Codec::kTopK10)})
    ->Args({1024 * 1024, static_cast<long>(net::Codec::kTopK10)});

void BM_SparseEncode(benchmark::State& state) {
  const net::Codec codec = static_cast<net::Codec>(state.range(0));
  const std::size_t n = static_cast<std::size_t>(state.range(1));
  Rng rng(10);
  Tensor t = Tensor::randn({n}, rng);
  std::vector<std::uint8_t> buf;
  buf.reserve(net::encoded_payload_size(n, codec));
  for (auto _ : state) {
    buf.clear();
    net::encode_tensor(t, codec, buf);
    benchmark::DoNotOptimize(buf.data());
  }
  // Rate is dense-equivalent input bytes, comparable with BM_CodecEncode.
  state.SetBytesProcessed(
      static_cast<long>(state.iterations() * n * sizeof(float)));
}
BENCHMARK(BM_SparseEncode)
    ->Args({static_cast<long>(net::Codec::kTopK1), 64 * 1024})
    ->Args({static_cast<long>(net::Codec::kTopK10), 64 * 1024})
    ->Args({static_cast<long>(net::Codec::kTopK10), 1024 * 1024});

void BM_SparseDecode(benchmark::State& state) {
  const net::Codec codec = static_cast<net::Codec>(state.range(0));
  const std::size_t n = static_cast<std::size_t>(state.range(1));
  Rng rng(11);
  Tensor t = Tensor::randn({n}, rng);
  std::vector<std::uint8_t> buf;
  net::encode_tensor(t, codec, buf);
  const Shape shape{n};
  for (auto _ : state) {
    Tensor back = net::decode_tensor(buf.data(), buf.size(), shape, codec);
    benchmark::DoNotOptimize(back.data());
  }
  state.SetBytesProcessed(
      static_cast<long>(state.iterations() * n * sizeof(float)));
}
BENCHMARK(BM_SparseDecode)
    ->Args({static_cast<long>(net::Codec::kTopK1), 64 * 1024})
    ->Args({static_cast<long>(net::Codec::kTopK10), 64 * 1024})
    ->Args({static_cast<long>(net::Codec::kTopK10), 1024 * 1024});

void print_kernel_histograms() {
  if (!obs::kernel_profiling_enabled()) return;
  std::fprintf(stderr, "\nobs kernel histograms (afl.tensor.*):\n");
  std::fprintf(stderr, "%-30s %12s %12s %12s %12s\n", "histogram", "count",
               "p50 (us)", "p95 (us)", "p99 (us)");
  for (const auto& [name, s] : obs::metrics().histograms()) {
    if (s.count == 0) continue;
    std::fprintf(stderr, "%-30s %12llu %12.3f %12.3f %12.3f\n", name.c_str(),
                 static_cast<unsigned long long>(s.count), s.p50 * 1e6, s.p95 * 1e6,
                 s.p99 * 1e6);
  }
}

}  // namespace

int main(int argc, char** argv) {
  // Snapshot writer first: it splices --out/-o away before google-benchmark
  // sees (and rejects) them.
  obs::prof::BenchReport report("micro_kernels", &argc, argv);
  report.set_scale("fixed");  // shapes are hard-coded, no smoke/full split
  // Profile kernels unless the caller explicitly opted out.
  if (std::getenv("AFL_KERNEL_PROFILE") == nullptr) {
    afl::obs::set_kernel_profiling(true);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  {
    obs::prof::BenchReport::Scoped all(report, "all_benchmarks");
    benchmark::RunSpecifiedBenchmarks();
  }
  benchmark::Shutdown();
  print_kernel_histograms();
  // One section per kernel histogram: total in-kernel seconds plus the
  // latency envelope, so `afl-insight bench diff` can gate per kernel.
  for (const auto& [name, s] : obs::metrics().histograms()) {
    if (s.count == 0) continue;
    report.add_section(name, s.sum,
                       {{"count", static_cast<double>(s.count)},
                        {"mean_us", s.mean * 1e6},
                        {"p95_us", s.p95 * 1e6}});
  }
  report.write();
  return 0;
}
