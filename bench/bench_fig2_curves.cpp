// Figure 2: learning curves ("avg" submodel accuracy per round) of
// AdaptiveFL and the four baselines on the CIFAR-10/100 analogues with the
// VGG16-style model, under IID and Dirichlet(0.6) partitions.

#include <vector>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace afl;
  using namespace afl::bench;
  obs::prof::BenchReport report("fig2_curves", &argc, argv);
  report.set_scale(bench_scale_name(bench_scale()));
  obs::prof::BenchReport::Scoped run_section(report, "run");

  print_header("Figure 2: learning curves (avg accuracy %, VGG16*)",
               "Fig. 2 (a-d)");

  const Algorithm algs[] = {Algorithm::kAllLarge, Algorithm::kDecoupled,
                            Algorithm::kHeteroFl, Algorithm::kScaleFl,
                            Algorithm::kAdaptiveFl};

  struct Panel {
    const char* title;
    TaskKind task;
    Partition partition;
    double alpha;
  };
  const Panel panels[] = {
      {"(a) CIFAR-10*, IID", TaskKind::kCifar10Like, Partition::kIid, 0.0},
      {"(b) CIFAR-10*, alpha=0.6", TaskKind::kCifar10Like, Partition::kDirichlet, 0.6},
      {"(c) CIFAR-100*, IID", TaskKind::kCifar100Like, Partition::kIid, 0.0},
      {"(d) CIFAR-100*, alpha=0.6", TaskKind::kCifar100Like, Partition::kDirichlet,
       0.6},
  };

  for (const Panel& panel : panels) {
    ExperimentConfig cfg = scaled_config();
    cfg.task = panel.task;
    cfg.model = ModelKind::kMiniVgg;
    cfg.partition = panel.partition;
    cfg.alpha = panel.alpha;
    const ExperimentEnv env = make_env(cfg);

    std::vector<RunResult> results;
    for (Algorithm a : algs) results.push_back(run_algorithm(a, env));

    std::printf("%s\n", panel.title);
    std::vector<std::string> header = {"round"};
    for (const RunResult& r : results) header.push_back(r.algorithm);
    Table table(header);
    for (std::size_t i = 0; i < results[0].curve.size(); ++i) {
      std::vector<std::string> row = {std::to_string(results[0].curve[i].round)};
      for (const RunResult& r : results) {
        row.push_back(i < r.curve.size() ? pct(r.curve[i].avg_acc) : "-");
      }
      table.add_row(std::move(row));
    }
    std::printf("%s\n", table.to_markdown().c_str());
  }
  return 0;
}
