// Figure 6 (+ Table 5): the real-test-bed experiment, reproduced on the
// device simulator. 17 clients in the paper's exact mix (4 Raspberry Pi 4B /
// 10 Jetson Nano / 3 Jetson Xavier AGX), 10 selected per round, Widar-like
// naturally non-IID data, MobileNetV2-style model. Prints Table 5 and the
// learning curves of all five methods.

#include <vector>

#include "bench_common.hpp"
#include "prune/model_pool.hpp"
#include "sim/testbed.hpp"

int main(int argc, char** argv) {
  using namespace afl;
  using namespace afl::bench;
  obs::prof::BenchReport report("fig6_testbed", &argc, argv);
  report.set_scale(bench_scale_name(bench_scale()));
  obs::prof::BenchReport::Scoped run_section(report, "run");
  print_header("Figure 6: test-bed experiment (Widar*, MobileNetV2*)",
               "Table 5 + Fig. 6");

  Table t5({"Type", "Device", "Comp", "Mem", "Num"});
  for (const TestbedRow& row : testbed_rows()) {
    t5.add_row({row.type, row.device, row.compute, row.memory,
                std::to_string(row.count)});
  }
  std::printf("Table 5 (simulated device profiles):\n%s\n", t5.to_markdown().c_str());

  ExperimentConfig cfg = scaled_config();
  cfg.task = TaskKind::kWidarLike;
  cfg.model = ModelKind::kMiniMobilenet;
  cfg.partition = Partition::kNatural;
  cfg.num_clients = 17;
  cfg.clients_per_round = 10;
  cfg.eval_every = std::max<std::size_t>(1, cfg.rounds / 10);
  ExperimentEnv env = make_env(cfg);
  {
    // Exact Table-5 tier mix instead of proportional assignment.
    ModelPool pool(env.spec, env.pool_config);
    Rng rng(cfg.seed + 17);
    env.devices = make_testbed_devices(pool, rng);
  }

  const Algorithm algs[] = {Algorithm::kAllLarge, Algorithm::kDecoupled,
                            Algorithm::kHeteroFl, Algorithm::kScaleFl,
                            Algorithm::kAdaptiveFl};
  std::vector<RunResult> results;
  for (Algorithm a : algs) {
    results.push_back(run_algorithm(a, env));
    std::fflush(stdout);
  }

  std::vector<std::string> header = {"round"};
  for (const RunResult& r : results) header.push_back(r.algorithm);
  Table curves(header);
  for (std::size_t j = 0; j < results[0].curve.size(); ++j) {
    std::vector<std::string> row = {std::to_string(results[0].curve[j].round)};
    for (const RunResult& r : results) {
      row.push_back(j < r.curve.size() ? pct(r.curve[j].avg_acc) : "-");
    }
    curves.add_row(std::move(row));
  }
  std::printf("Learning curves (avg acc %%):\n%s\n", curves.to_markdown().c_str());

  Table finals({"Algorithm", "best avg (%)", "best full (%)"});
  for (const RunResult& r : results) {
    finals.add_row({r.algorithm, pct(r.best_avg_acc()), pct(r.best_full_acc())});
  }
  std::printf("Final comparison:\n%s\n", finals.to_markdown().c_str());
  return 0;
}
