// Figure 4: learning curves for different population sizes K (the paper uses
// 50/100/200/500 clients on CIFAR-10 with ResNet18, alpha = 0.6; 10%
// participate per round). The miniature substrate scales the populations
// down proportionally at smoke scale.

#include <vector>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace afl;
  using namespace afl::bench;
  obs::prof::BenchReport report("fig4_scaling", &argc, argv);
  report.set_scale(bench_scale_name(bench_scale()));
  obs::prof::BenchReport::Scoped run_section(report, "run");
  print_header("Figure 4: client-population scaling (avg acc %, ResNet18*)",
               "Fig. 4");

  const bool full = bench_scale() == BenchScale::kFull;
  const std::size_t populations_full[] = {50, 100, 200, 500};
  const std::size_t populations_smoke[] = {15, 30, 60, 120};
  const Algorithm algs[] = {Algorithm::kAllLarge, Algorithm::kHeteroFl,
                            Algorithm::kScaleFl, Algorithm::kAdaptiveFl};

  for (std::size_t i = 0; i < 4; ++i) {
    const std::size_t population = (full ? populations_full : populations_smoke)[i];
    ExperimentConfig cfg = scaled_config();
    cfg.task = TaskKind::kCifar10Like;
    cfg.model = ModelKind::kMiniResnet;
    cfg.partition = Partition::kDirichlet;
    cfg.alpha = 0.6;
    cfg.num_clients = population;
    cfg.clients_per_round = std::max<std::size_t>(2, population / 10);
    cfg.eval_every = std::max<std::size_t>(1, cfg.rounds / 10);
    const ExperimentEnv env = make_env(cfg);

    std::vector<RunResult> results;
    for (Algorithm a : algs) results.push_back(run_algorithm(a, env));

    std::printf("K = %zu clients (%zu per round)\n", population,
                cfg.clients_per_round);
    std::vector<std::string> header = {"round"};
    for (const RunResult& r : results) header.push_back(r.algorithm);
    Table table(header);
    for (std::size_t j = 0; j < results[0].curve.size(); ++j) {
      std::vector<std::string> row = {std::to_string(results[0].curve[j].round)};
      for (const RunResult& r : results) {
        row.push_back(j < r.curve.size() ? pct(r.curve[j].avg_acc) : "-");
      }
      table.add_row(std::move(row));
    }
    std::printf("%s\n", table.to_markdown().c_str());
    std::fflush(stdout);
  }
  return 0;
}
