// Figure 3: accuracy of the per-level submodels of HeteroFL, ScaleFL and
// AdaptiveFL (VGG16-style, CIFAR-10 analogue). The paper's headline
// observation: HeteroFL/ScaleFL large (1.0x) submodels can underperform
// their small counterparts, while AdaptiveFL's accuracy grows with submodel
// size.

#include <algorithm>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace afl;
  using namespace afl::bench;
  obs::prof::BenchReport report("fig3_submodels", &argc, argv);
  report.set_scale(bench_scale_name(bench_scale()));
  obs::prof::BenchReport::Scoped run_section(report, "run");
  print_header("Figure 3: per-level submodel accuracy (%, final round)",
               "Fig. 3");

  ExperimentConfig cfg = scaled_config();
  cfg.task = TaskKind::kCifar10Like;
  cfg.model = ModelKind::kMiniVgg;
  cfg.eval_every = std::max<std::size_t>(1, cfg.rounds / 5);
  const ExperimentEnv env = make_env(cfg);

  Table table({"Algorithm", "small", "medium", "large (full)"});
  for (Algorithm a : {Algorithm::kHeteroFl, Algorithm::kScaleFl,
                      Algorithm::kAdaptiveFl}) {
    const RunResult r = run_algorithm(a, env);
    // level_acc is keyed by label; collect in ascending-size order.
    std::vector<std::pair<std::string, double>> levels(r.level_acc.begin(),
                                                       r.level_acc.end());
    // Labels differ per algorithm ("S1/M1/L1", "0.40x/0.66x/1.00x",
    // "0.xx/dk"); sort by accuracy-independent size key: use the stored map
    // order won't do — rely on the algorithm-specific naming conventions.
    auto find_by = [&](std::initializer_list<const char*> keys) -> std::string {
      for (const char* k : keys) {
        auto it = r.level_acc.find(k);
        if (it != r.level_acc.end()) return pct(it->second) + " (" + k + ")";
      }
      // Fallback: scan for a label containing any key as a substring.
      for (const char* k : keys) {
        for (const auto& [label, acc] : r.level_acc) {
          if (label.find(k) != std::string::npos) {
            return pct(acc) + " (" + label + ")";
          }
        }
      }
      return "-";
    };
    std::string small, medium, large;
    if (a == Algorithm::kHeteroFl) {
      small = find_by({"0.40x"});
      medium = find_by({"0.66x"});
      large = find_by({"1.00x"});
    } else if (a == Algorithm::kAdaptiveFl) {
      small = find_by({"S1"});
      medium = find_by({"M1"});
      large = find_by({"L1"});
    } else {  // ScaleFL labels are "<width>x/d<depth>"
      std::vector<std::pair<std::size_t, std::pair<std::string, double>>> byd;
      for (const auto& [label, acc] : r.level_acc) {
        const auto pos = label.find("/d");
        const std::size_t depth =
            pos == std::string::npos ? 0 : std::stoul(label.substr(pos + 2));
        byd.push_back({depth, {label, acc}});
      }
      std::sort(byd.begin(), byd.end());
      small = byd.size() > 0 ? pct(byd[0].second.second) + " (" + byd[0].second.first + ")" : "-";
      medium = byd.size() > 1 ? pct(byd[1].second.second) + " (" + byd[1].second.first + ")" : "-";
      large = byd.size() > 2 ? pct(byd[2].second.second) + " (" + byd[2].second.first + ")" : "-";
    }
    table.add_row({r.algorithm, small, medium, large});
    std::fflush(stdout);
  }
  std::printf("%s\n", table.to_markdown().c_str());
  return 0;
}
