// Flat single-aggregator AdaptiveFL vs the hierarchical multi-aggregator
// engine (docs/HIERARCHY.md) on one seeded smoke environment, all three runs
// over the same simulated fp16 transport:
//
//   run 0  flat RoundEngine (the baseline)
//   run 1  hier, 2 shards, sync_every 1  — must be BIT-IDENTICAL to run 0
//   run 2  hier, 2 shards, sync_every 3  — edges diverge locally, merge at syncs
//
// The lockstep run demonstrates the engine's core contract: coverage-mass
// partials (fl/shard_aggregator.hpp) make the root merge exactly equal to the
// flat aggregation, so sharding is a pure scale-out knob. This example checks
// that invariance on every curve point and every comm counter and exits 1 on
// the first mismatch. The sync_every=3 run shows the relaxed mode: fewer
// root merges, locally-evolving edge models, evals only at sync rounds.
//
// Writes a three-run trace whose hier dispatches carry shard tags:
//
//   ./hier_scaleout trace.jsonl
//   afl-insight summary trace.jsonl     # per-shard breakdown on runs 1 and 2
//   afl-insight diff trace.jsonl trace.jsonl --base-run 0 --cand-run 1
//
// tests/hier_scaleout_check.cmake drives exactly this as a CI gate.
//
//   ./hier_scaleout [trace.jsonl] [rounds]

#include <cstdio>
#include <cstdlib>

#include "core/experiment.hpp"
#include "obs/trace.hpp"
#include "util/table.hpp"

namespace {

/// Exact comparison of two runs; prints one line per mismatching field.
/// Bit-identical means ==, not "close": the shard merge is integer
/// fixed-point, so even the last ulp must agree.
bool identical(const afl::RunResult& a, const afl::RunResult& b) {
  bool ok = true;
  auto check = [&](const char* what, double x, double y) {
    if (x != y) {
      std::printf("  MISMATCH %s: %.17g vs %.17g\n", what, x, y);
      ok = false;
    }
  };
  check("final_full_acc", a.final_full_acc, b.final_full_acc);
  check("final_avg_acc", a.final_avg_acc, b.final_avg_acc);
  check("sim_seconds", a.sim_seconds, b.sim_seconds);
  check("params_sent", double(a.comm.params_sent()), double(b.comm.params_sent()));
  check("params_returned", double(a.comm.params_returned()),
        double(b.comm.params_returned()));
  check("bytes_sent", double(a.comm.bytes_sent()), double(b.comm.bytes_sent()));
  check("bytes_returned", double(a.comm.bytes_returned()),
        double(b.comm.bytes_returned()));
  check("retransmits", double(a.comm.retransmits()), double(b.comm.retransmits()));
  check("stragglers", double(a.comm.stragglers()), double(b.comm.stragglers()));
  if (a.curve.size() != b.curve.size()) {
    std::printf("  MISMATCH curve length: %zu vs %zu\n", a.curve.size(),
                b.curve.size());
    return false;
  }
  for (std::size_t i = 0; i < a.curve.size(); ++i) {
    check("curve.full_acc", a.curve[i].full_acc, b.curve[i].full_acc);
    check("curve.avg_acc", a.curve[i].avg_acc, b.curve[i].avg_acc);
    check("curve.round", double(a.curve[i].round), double(b.curve[i].round));
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace afl;

  const char* trace_path = argc > 1 ? argv[1] : "hier_scaleout_trace.jsonl";
  const std::size_t rounds =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 12;
  obs::set_trace_path(trace_path);

  // Seeded smoke environment: 24 tiered devices, 8 per cohort, miniature VGG
  // on an 8x8 CIFAR-10 analogue. eval_every 3 lines up with sync_every 3, so
  // the divergent run evaluates on the same cadence as the others.
  ExperimentConfig cfg;
  cfg.num_clients = 24;
  cfg.clients_per_round = 8;
  cfg.samples_per_client = 25;
  cfg.test_samples = 100;
  cfg.image_hw = 8;
  cfg.rounds = rounds;
  cfg.local_epochs = 2;
  cfg.batch_size = 25;
  cfg.eval_every = 3;
  ExperimentEnv env = make_env(cfg);

  // One transport for all three runs: fp16 frames on a bandwidth-limited
  // link plus a deterministic compute charge, so the simulated clock and the
  // per-shard byte columns in the trace are non-trivial.
  net::NetConfig net;
  net.enabled = true;
  net.codec = net::Codec::kFp16;
  net.channel.bandwidth_bytes_per_s = 256 * 1024.0;
  net.channel.latency_s = 0.02;
  net.compute_s_per_kparam = 0.1;
  env.run.net = net;

  hier::HierConfig off;  // explicit, so AFL_HIER in the environment can't flip run 0
  env.run.hier = off;
  const RunResult flat = run_algorithm(Algorithm::kAdaptiveFl, env);

  hier::HierConfig lockstep;
  lockstep.enabled = true;
  lockstep.shards = 2;
  lockstep.sync_every = 1;
  env.run.hier = lockstep;
  const RunResult hier1 = run_algorithm(Algorithm::kAdaptiveFl, env);

  hier::HierConfig relaxed = lockstep;
  relaxed.sync_every = 3;
  env.run.hier = relaxed;
  const RunResult hier3 = run_algorithm(Algorithm::kAdaptiveFl, env);

  Table t({"engine", "final full (%)", "best full (%)", "sim seconds",
           "params sent", "evals"});
  const char* labels[] = {"flat (1 aggregator)", "hier 2 shards sync=1",
                          "hier 2 shards sync=3"};
  const RunResult* runs[] = {&flat, &hier1, &hier3};
  for (int i = 0; i < 3; ++i) {
    const RunResult* r = runs[i];
    t.add_row({labels[i], Table::fmt_pct(r->final_full_acc),
               Table::fmt_pct(r->best_full_acc()), Table::fmt(r->sim_seconds, 2),
               std::to_string(r->comm.params_sent()),
               std::to_string(r->curve.size())});
  }
  std::printf("%s\n", t.to_markdown().c_str());

  Table tta({"acc threshold", "flat sim s", "hier sync=1", "hier sync=3"});
  for (const TimeToAcc& f : flat.time_to_acc) {
    std::string cells[2] = {"-", "-"};
    const RunResult* hier_runs[] = {&hier1, &hier3};
    for (int i = 0; i < 2; ++i) {
      for (const TimeToAcc& h : hier_runs[i]->time_to_acc) {
        if (h.accuracy == f.accuracy) cells[i] = Table::fmt(h.sim_seconds, 2);
      }
    }
    tta.add_row({Table::fmt(f.accuracy, 2), Table::fmt(f.sim_seconds, 2),
                 cells[0], cells[1]});
  }
  std::printf("simulated time to accuracy:\n%s\n", tta.to_markdown().c_str());

  std::printf("shard invariance (flat vs hier sync_every=1): ");
  const bool invariant = identical(flat, hier1);
  std::printf("%s\n", invariant ? "BIT-IDENTICAL" : "BROKEN");
  std::printf("trace written to %s — try `afl-insight summary %s`\n",
              trace_path, trace_path);
  return invariant ? 0 : 1;
}
