// Smart-campus scenario: the kind of AIoT deployment the paper's introduction
// motivates. A campus runs 60 camera nodes of three hardware generations
// (40% old weak nodes, 30% mid-range, 30% recent GPUs) that collaboratively
// learn a 22-class activity recognizer from naturally non-IID data (each
// building sees different activities and has its own sensor calibration).
// Compares AdaptiveFL against HeteroFL and Decoupled on identical data, then
// prints which model each node tier ends up serving.
//
//   ./smart_campus [rounds]

#include <cstdio>
#include <cstdlib>

#include "core/experiment.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace afl;

  ExperimentConfig cfg;
  cfg.task = TaskKind::kWidarLike;  // 22-class sensing analogue
  cfg.model = ModelKind::kMiniResnet;
  cfg.partition = Partition::kNatural;  // per-building style + class skew
  cfg.num_clients = 60;
  cfg.clients_per_round = 8;
  cfg.samples_per_client = 20;
  cfg.test_samples = 440;
  cfg.rounds = argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 60;
  cfg.eval_every = std::max<std::size_t>(1, cfg.rounds / 6);
  cfg.proportions = TierProportions::parse(4, 3, 3);

  std::printf("Smart campus: %zu nodes (4:3:3 old/mid/new), %zu-class activity "
              "recognition, naturally non-IID per building\n\n",
              cfg.num_clients, std::size_t{22});

  const ExperimentEnv env = make_env(cfg);
  Table table({"Algorithm", "best avg (%)", "best full (%)", "comm waste (%)",
               "failed trainings"});
  for (Algorithm a : {Algorithm::kDecoupled, Algorithm::kHeteroFl,
                      Algorithm::kAdaptiveFl}) {
    const RunResult r = run_algorithm(a, env);
    table.add_row({r.algorithm, Table::fmt_pct(r.best_avg_acc()),
                   Table::fmt_pct(r.best_full_acc()),
                   Table::fmt_pct(r.comm.waste_rate()),
                   std::to_string(r.failed_trainings)});
  }
  std::printf("%s\n", table.to_markdown().c_str());

  // What each hardware tier can actually serve after training.
  const ModelPool pool(env.spec, env.pool_config);
  Table tiers({"node tier", "capacity (params)", "largest deployable model"});
  for (DeviceTier t : {DeviceTier::kWeak, DeviceTier::kMedium, DeviceTier::kStrong}) {
    const std::size_t cap = tier_capacity(pool, t);
    const auto idx = pool.adapt(pool.largest_index(), cap);
    tiers.add_row({device_tier_name(t), Table::fmt_count(cap),
                   idx ? pool.entry(*idx).label() : "(none)"});
  }
  std::printf("Deployment map:\n%s\n", tiers.to_markdown().c_str());
  std::printf("AdaptiveFL trains one weight space that serves all three tiers;\n"
              "Decoupled would maintain three disjoint models instead.\n");
  return 0;
}
