// Uncertain-environment scenario (§1: "uncertain operating environments with
// dynamically changing hardware resources"). Device capacity fluctuates every
// round (multiplicative jitter); the server never observes it. The example
// sweeps the jitter magnitude and reports how AdaptiveFL's on-device
// resource-aware pruning and RL selection absorb the uncertainty, versus the
// greedy dispatch strategy that ships the full model blindly.
//
//   ./uncertain_environment [rounds]

#include <cstdio>
#include <cstdlib>

#include "core/experiment.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace afl;

  const std::size_t rounds =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 50;

  std::printf("Dynamic-resource sweep: capacity(t) = base * (1 +/- jitter)\n\n");

  Table table({"jitter", "algorithm", "best full (%)", "comm waste (%)",
               "failed trainings"});
  for (double jitter : {0.0, 0.2, 0.4}) {
    ExperimentConfig cfg;
    cfg.task = TaskKind::kCifar10Like;
    cfg.model = ModelKind::kMiniVgg;
    cfg.num_clients = 24;
    cfg.clients_per_round = 6;
    cfg.samples_per_client = 20;
    cfg.test_samples = 300;
    cfg.rounds = rounds;
    cfg.eval_every = std::max<std::size_t>(1, rounds / 5);
    cfg.capacity_jitter = jitter;
    const ExperimentEnv env = make_env(cfg);
    for (Algorithm a : {Algorithm::kAdaptiveFl, Algorithm::kAdaptiveFlGreed}) {
      const RunResult r = run_algorithm(a, env);
      table.add_row({Table::fmt(jitter, 1), r.algorithm,
                     Table::fmt_pct(r.best_full_acc()),
                     Table::fmt_pct(r.comm.waste_rate()),
                     std::to_string(r.failed_trainings)});
    }
  }
  std::printf("%s\n", table.to_markdown().c_str());
  std::printf(
      "Expected shape: +CS keeps the waste rate low even under jitter (it\n"
      "learns which devices can hold which sizes); +Greed ships L1 blindly,\n"
      "so every weak/medium round-trip wastes the pruned-away parameters.\n");
  return 0;
}
