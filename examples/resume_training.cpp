// Checkpointing and warm-started training: run AdaptiveFL for a first phase,
// save the global model to disk, then resume a second phase from the
// checkpoint (as a long-lived AIoT deployment would across server restarts).
//
//   ./resume_training [phase_rounds]

#include <cstdio>
#include <cstdlib>

#include "core/experiment.hpp"
#include "nn/checkpoint.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace afl;

  const std::size_t phase_rounds =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 25;

  ExperimentConfig cfg;
  cfg.task = TaskKind::kCifar10Like;
  cfg.model = ModelKind::kMiniVgg;
  cfg.num_clients = 20;
  cfg.clients_per_round = 5;
  cfg.samples_per_client = 20;
  cfg.test_samples = 300;
  cfg.rounds = phase_rounds;
  cfg.eval_every = std::max<std::size_t>(1, phase_rounds / 5);
  const ExperimentEnv env = make_env(cfg);

  const char* ckpt_path = "adaptivefl_global.ckpt";

  // Phase 1: train from scratch and checkpoint the global model.
  AdaptiveFl phase1(env.spec, env.pool_config, env.data, env.devices, env.run, {});
  const RunResult r1 = phase1.run();
  save_checkpoint(phase1.global_params(), ckpt_path);
  std::printf("phase 1: %zu rounds -> full %.2f%% (checkpoint: %s, %zu params)\n",
              phase_rounds, 100 * r1.final_full_acc, ckpt_path,
              param_count(phase1.global_params()));

  // Phase 2: a fresh server process resumes from the checkpoint.
  FlRunConfig run2 = env.run;
  run2.seed = env.run.seed + 1;  // different round randomness, same weights
  AdaptiveFl phase2(env.spec, env.pool_config, env.data, env.devices, run2, {});
  phase2.set_initial_params(load_checkpoint(ckpt_path));
  const RunResult r2 = phase2.run();
  std::printf("phase 2 (resumed): %zu more rounds -> full %.2f%%\n", phase_rounds,
              100 * r2.final_full_acc);

  Table table({"phase", "rounds", "final full (%)", "final avg (%)"});
  table.add_row({"1 (cold)", std::to_string(phase_rounds),
                 Table::fmt_pct(r1.final_full_acc), Table::fmt_pct(r1.final_avg_acc)});
  table.add_row({"2 (warm)", std::to_string(phase_rounds),
                 Table::fmt_pct(r2.final_full_acc), Table::fmt_pct(r2.final_avg_acc)});
  std::printf("\n%s", table.to_markdown().c_str());
  std::printf("\nWarm phase should end above the cold phase: training continued\n"
              "from the checkpoint rather than restarting.\n");
  std::remove(ckpt_path);
  return 0;
}
