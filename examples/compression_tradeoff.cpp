// Uplink-compression trade-off scenario (docs/COMPRESSION.md): the same
// seeded environment run twice — first with dense fp32 frames both ways,
// then with the uplink switched to top-k(10%) sparsification with per-client
// error-feedback residuals while the downlink stays fp32.
//
// Exits nonzero unless the sparse run holds BOTH ends of the bargain:
//   - best full accuracy within 0.05 of the dense run (error feedback must
//     recover what the mask drops), and
//   - at least 5x fewer uplink payload bytes (the whole point of shipping
//     ~10% of the coordinates).
// These are the same thresholds the CI gate re-checks from the trace via
// `afl-insight diff --acc-metric best --max-acc-drop 0.05
//  --max-uplink-bytes-ratio 0.2` (tests/compression_tradeoff_check.cmake).
//
// The fleet trains homogeneous full-size models (AllLarge): error feedback
// needs stable per-client tensor shapes to accumulate across rounds, and
// AdaptiveFL's per-round submodel reassignment resets a residual row every
// time a client's imported shapes change (see "Interaction with
// heterogeneous submodels" in docs/COMPRESSION.md).
//
//   ./compression_tradeoff [trace.jsonl] [rounds]

#include <cstdio>
#include <cstdlib>

#include "core/experiment.hpp"
#include "obs/trace.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace afl;

  const char* trace_path = argc > 1 ? argv[1] : "compression_tradeoff_trace.jsonl";
  const std::size_t rounds =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 30;
  obs::set_trace_path(trace_path);

  // Seeded smoke environment, identical for both runs: the only difference
  // between them is the uplink codec.
  ExperimentConfig cfg;
  cfg.num_clients = 16;
  cfg.clients_per_round = 6;
  cfg.samples_per_client = 25;
  cfg.test_samples = 100;
  cfg.image_hw = 8;
  cfg.rounds = rounds;
  cfg.local_epochs = 2;
  cfg.batch_size = 25;
  cfg.eval_every = 3;
  ExperimentEnv env = make_env(cfg);

  net::NetConfig net;
  net.enabled = true;
  net.codec = net::Codec::kFp32;
  net.channel.bandwidth_bytes_per_s = 256 * 1024.0;
  net.channel.latency_s = 0.02;
  net.compute_s_per_kparam = 0.5;
  env.run.net = net;
  env.run.pop = pop::PopConfig{};  // insulate from AFL_POP_* in the env

  // Run 0: dense fp32 in both directions.
  const RunResult dense = run_algorithm(Algorithm::kAllLarge, env);

  // Run 1: top-k(10%) + error feedback on the uplink only.
  env.run.net->uplink_codec = net::Codec::kTopK10;
  const RunResult sparse = run_algorithm(Algorithm::kAllLarge, env);

  const double up_ratio =
      sparse.comm.bytes_returned() > 0
          ? static_cast<double>(dense.comm.bytes_returned()) /
                static_cast<double>(sparse.comm.bytes_returned())
          : 0.0;
  Table t({"uplink", "final full (%)", "best full (%)", "bytes down",
           "bytes up", "sim seconds"});
  t.add_row({"fp32", Table::fmt_pct(dense.final_full_acc),
             Table::fmt_pct(dense.best_full_acc()),
             std::to_string(dense.comm.bytes_sent()),
             std::to_string(dense.comm.bytes_returned()),
             Table::fmt(dense.sim_seconds, 2)});
  t.add_row({"topk10 + EF", Table::fmt_pct(sparse.final_full_acc),
             Table::fmt_pct(sparse.best_full_acc()),
             std::to_string(sparse.comm.bytes_sent()),
             std::to_string(sparse.comm.bytes_returned()),
             Table::fmt(sparse.sim_seconds, 2)});
  std::printf("%s\n", t.to_markdown().c_str());
  std::printf("uplink bytes: %.2fx fewer than dense fp32\n", up_ratio);
  std::printf("trace written to %s — try `afl-insight bytes %s`\n",
              trace_path, trace_path);

  // Gate 1: error feedback must keep the sparse run's best accuracy within
  // 0.05 of dense.
  const double drop = dense.best_full_acc() - sparse.best_full_acc();
  if (drop > 0.05) {
    std::fprintf(stderr,
                 "FAIL: sparse uplink dropped best accuracy by %.4f "
                 "(> 0.05 allowed): dense %.4f vs sparse %.4f\n",
                 drop, dense.best_full_acc(), sparse.best_full_acc());
    return 1;
  }
  // Gate 2: the uplink savings must actually materialize.
  if (up_ratio < 5.0) {
    std::fprintf(stderr,
                 "FAIL: uplink only shrank %.2fx (>= 5x required): "
                 "dense %llu bytes vs sparse %llu bytes\n",
                 up_ratio,
                 static_cast<unsigned long long>(dense.comm.bytes_returned()),
                 static_cast<unsigned long long>(sparse.comm.bytes_returned()));
    return 1;
  }
  std::printf("sparse-vs-dense best accuracy drop %.4f within 0.05 budget, "
              "uplink %.2fx smaller\n",
              drop, up_ratio);
  return 0;
}
