// Population-dynamics stress scenario (docs/POPULATION.md): the same seeded
// smoke environment run twice — first with a static, always-on fleet, then
// under a churn storm where 30% of the active population rotates out (and an
// equal-sized slice of fresh clients rotates in) every simulated hour, a
// random stretch of present clients goes dark each epoch, and every client
// sits behind its own sampled channel profile instead of the shared link.
//
// The rotation epoch is literal: the static run measures the simulated
// seconds one federated round costs on this transport, and the churn run
// rotates every ceil(3600 / round_sim_s) rounds. AdaptiveFL's RL selector
// only learns about departures the hard way (missed responses), so the run
// doubles as a selector-robustness check.
//
// Exits nonzero unless the churn run's final full accuracy stays within
// 0.10 of the static run — the "no accuracy collapse" CI gate
// (tests/churn_storm_check.cmake).
//
//   ./churn_storm [trace.jsonl] [rounds]

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "core/experiment.hpp"
#include "obs/trace.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace afl;

  const char* trace_path = argc > 1 ? argv[1] : "churn_storm_trace.jsonl";
  const std::size_t rounds =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 30;
  obs::set_trace_path(trace_path);

  // Seeded smoke environment: 16 tiered devices, 6 selected per round, so a
  // quarter of the fleet can be absent at any instant while the cohort still
  // fills from present clients most rounds.
  ExperimentConfig cfg;
  cfg.num_clients = 16;
  cfg.clients_per_round = 6;
  cfg.samples_per_client = 25;
  cfg.test_samples = 100;
  cfg.image_hw = 8;
  cfg.rounds = rounds;
  cfg.local_epochs = 2;
  cfg.batch_size = 25;
  cfg.eval_every = 3;
  ExperimentEnv env = make_env(cfg);

  // Transport with a deterministic compute charge slow enough that one round
  // costs simulated minutes — so "rotate every simulated hour" is a handful
  // of rounds, not hundreds.
  net::NetConfig net;
  net.enabled = true;
  net.codec = net::Codec::kFp16;
  net.channel.bandwidth_bytes_per_s = 256 * 1024.0;
  net.channel.latency_s = 0.02;
  net.compute_s_per_kparam = 7.0;
  net.round_deadline_s = 0.0;  // no deadline: absences fail, nobody is cut
  env.run.net = net;

  // Run 0: static population (explicitly disabled so AFL_POP_* in the
  // environment cannot skew the baseline).
  env.run.pop = pop::PopConfig{};
  const RunResult static_run = run_algorithm(Algorithm::kAdaptiveFl, env);

  const double round_sim_s =
      static_run.sim_seconds / static_cast<double>(std::max<std::size_t>(rounds, 1));
  const std::size_t rotate_every = static_cast<std::size_t>(
      std::max(1.0, std::ceil(3600.0 / std::max(round_sim_s, 1e-9))));

  // Run 1: the storm. A quarter of the fleet is absent at any instant, 30%
  // of the active set rotates every simulated hour, present clients go dark
  // for two-round stretches now and then, and each client gets its own
  // bandwidth / latency / loss draw around the shared base channel.
  pop::PopConfig storm;
  storm.enabled = true;
  storm.active_frac = 0.75;
  storm.rotate_every = rotate_every;
  storm.rotate_frac = 0.3;
  storm.dark_prob = 0.05;
  storm.dark_len = 2;
  storm.channels = true;
  storm.bw_spread = 1.0;
  storm.latency_spread = 0.5;
  storm.loss_max = 0.02;
  env.run.pop = storm;
  const RunResult churn_run = run_algorithm(Algorithm::kAdaptiveFl, env);

  std::printf("rotation epoch: every %zu rounds (~%.0f sim s/round, 3600 s/hour)\n\n",
              rotate_every, round_sim_s);
  Table t({"population", "final full (%)", "best full (%)", "sim seconds",
           "failed trainings"});
  t.add_row({"static", Table::fmt_pct(static_run.final_full_acc),
             Table::fmt_pct(static_run.best_full_acc()),
             Table::fmt(static_run.sim_seconds, 2),
             std::to_string(static_run.failed_trainings)});
  t.add_row({"churn storm", Table::fmt_pct(churn_run.final_full_acc),
             Table::fmt_pct(churn_run.best_full_acc()),
             Table::fmt(churn_run.sim_seconds, 2),
             std::to_string(churn_run.failed_trainings)});
  std::printf("%s\n", t.to_markdown().c_str());
  std::printf("trace written to %s — try `afl-insight summary %s`\n",
              trace_path, trace_path);

  // The CI gate: churn must not collapse accuracy.
  const double drop = static_run.final_full_acc - churn_run.final_full_acc;
  if (drop > 0.10) {
    std::fprintf(stderr,
                 "FAIL: churn storm dropped final accuracy by %.4f "
                 "(> 0.10 allowed): static %.4f vs churn %.4f\n",
                 drop, static_run.final_full_acc, churn_run.final_full_acc);
    return 1;
  }
  std::printf("churn-vs-static final accuracy drop %.4f within 0.10 budget\n",
              drop);
  return 0;
}
