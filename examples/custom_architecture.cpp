// Using the public API with a custom architecture: define your own ArchSpec,
// inspect its width-pruned pool, and run AdaptiveFL on it directly (without
// the ExperimentConfig convenience layer). This is the integration path for
// downstream users who bring their own model family.
//
//   ./custom_architecture [rounds]

#include <cstdio>
#include <cstdlib>

#include "core/adaptivefl.hpp"
#include "data/federated.hpp"
#include "prune/model_pool.hpp"
#include "sim/device.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace afl;

  // 1. A custom conv-net spec: 5 conv units + 1 dense unit, 20x20 inputs,
  //    6 classes. Units 1..tau are never pruned.
  ArchSpec spec;
  spec.name = "custom_cnn";
  spec.in_channels = 2;
  spec.in_h = spec.in_w = 20;
  spec.num_classes = 6;
  spec.tau = 2;
  auto conv = [](std::size_t c, bool pool) {
    Unit u;
    u.kind = UnitKind::kConv;
    u.out_c = c;
    u.maxpool_after = pool;
    return u;
  };
  Unit dense;
  dense.kind = UnitKind::kLinear;
  dense.out_c = 48;
  // Channel widths should grow with depth (as in VGG/ResNet): the pool's
  // size ordering S1 < M_p requires the pruned deep tail to dominate the
  // parameter count. ModelPool validates this and throws otherwise.
  spec.units = {conv(12, true), conv(12, true), conv(24, false),
                conv(24, true), conv(48, true), dense};

  // 2. The server's model pool: width ratios 1.0 / 0.66 / 0.40, p = 2
  //    sublevels per level via the starting-prune index I. The pool requires
  //    strictly ascending sizes (S_p < ... < S1 < M_p < ... < L1); a wide I
  //    grid on a shallow architecture can violate S1 < M_p, in which case
  //    ModelPool throws — shrink p or the I grid until it holds.
  const PoolConfig pool_cfg = PoolConfig::defaults_for(spec, 2);
  const ModelPool pool(spec, pool_cfg);
  Table splits({"entry", "r_w", "I", "params", "ratio"});
  for (std::size_t i = pool.size(); i-- > 0;) {
    const PoolEntry& e = pool.entry(i);
    splits.add_row({e.label(), Table::fmt(e.r_w), std::to_string(e.I),
                    Table::fmt_count(e.params),
                    Table::fmt(double(e.params) / double(pool.largest().params))});
  }
  std::printf("Custom architecture pool:\n%s\n", splits.to_markdown().c_str());

  // 3. Federated data (Dirichlet non-IID) + heterogeneous devices.
  Rng rng(42);
  SyntheticConfig task_cfg;
  task_cfg.num_classes = 6;
  task_cfg.channels = 2;
  task_cfg.hw = 20;
  task_cfg.modes_per_class = 3;
  const SyntheticTask task(task_cfg, rng);
  FederatedConfig fed;
  fed.num_clients = 18;
  fed.samples_per_client = 25;
  fed.test_samples = 240;
  fed.partition = Partition::kDirichlet;
  fed.alpha = 0.5;
  const FederatedDataset data = make_federated(task, fed, rng);
  const std::vector<DeviceSim> devices =
      make_devices(pool, fed.num_clients, TierProportions::parse(4, 3, 3), rng,
                   /*jitter=*/0.1);

  // 4. Run AdaptiveFL directly.
  FlRunConfig run;
  run.rounds = argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 40;
  run.clients_per_round = 6;
  run.local.epochs = 2;
  run.local.batch_size = 25;
  run.local.lr = 0.05;
  run.eval_every = std::max<std::size_t>(1, run.rounds / 8);
  run.seed = 7;
  AdaptiveFl alg(spec, pool_cfg, data, devices, run, {});
  const RunResult r = alg.run();

  Table curve({"round", "full (%)", "avg (%)", "cum. waste (%)"});
  for (const RoundRecord& rec : r.curve) {
    curve.add_row({std::to_string(rec.round), Table::fmt_pct(rec.full_acc),
                   Table::fmt_pct(rec.avg_acc), Table::fmt_pct(rec.comm_waste)});
  }
  std::printf("AdaptiveFL on custom_cnn:\n%s\n", curve.to_markdown().c_str());
  std::printf("Final submodels: L1 %.2f%% | M1 %.2f%% | S1 %.2f%%\n",
              100 * r.level_acc.at("L1"), 100 * r.level_acc.at("M1"),
              100 * r.level_acc.at("S1"));
  return 0;
}
