// Synchronous deadline-bounded AdaptiveFL vs the buffered async engine
// (docs/ASYNC.md) on one seeded smoke environment, both over the same
// simulated transport. The sync run pays max-of-cohort per round — every
// round waits for its slowest downlink + compute + uplink chain — while the
// async run commits a new global version as soon as the first K updates
// arrive, so fast clients stop waiting for stragglers.
//
// Writes a two-run trace (run 0 = sync, run 1 = async) for offline analysis:
//
//   ./async_vs_sync trace.jsonl
//   afl-insight timeline trace.jsonl
//   afl-insight diff trace.jsonl trace.jsonl --run 0 --tta-acc 0.30
//
// tests/async_timeline_check.cmake drives exactly this pair as a CI gate.
//
//   ./async_vs_sync [trace.jsonl] [rounds]

#include <cstdio>
#include <cstdlib>

#include "core/experiment.hpp"
#include "obs/trace.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace afl;

  const char* trace_path = argc > 1 ? argv[1] : "async_vs_sync_trace.jsonl";
  const std::size_t rounds =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 30;
  obs::set_trace_path(trace_path);

  // Seeded smoke environment (the integration suite's learning config): 12
  // tiered devices, 6 per cohort, miniature VGG on an 8x8 CIFAR-10 analogue.
  ExperimentConfig cfg;
  cfg.num_clients = 12;
  cfg.clients_per_round = 6;
  cfg.samples_per_client = 25;
  cfg.test_samples = 100;
  cfg.image_hw = 8;
  cfg.rounds = rounds;
  cfg.local_epochs = 2;
  cfg.batch_size = 25;
  cfg.eval_every = 3;
  ExperimentEnv env = make_env(cfg);

  // One transport for both runs: fp16 frames on a bandwidth-limited lossless
  // link plus a deterministic compute charge, so per-client event durations
  // track submodel size (strong devices hold more parameters and finish
  // later — the straggler effect async is built to absorb).
  net::NetConfig net;
  net.enabled = true;
  net.codec = net::Codec::kFp16;
  net.channel.bandwidth_bytes_per_s = 256 * 1024.0;
  net.channel.latency_s = 0.02;
  net.compute_s_per_kparam = 0.1;

  env.run.net = net;
  env.run.net->round_deadline_s = 20.0;  // sync: generous, never cuts anyone
  const RunResult sync = run_algorithm(Algorithm::kAdaptiveFl, env);

  env.run.net->round_deadline_s = 0.0;  // async has no round barrier at all
  async::AsyncConfig acfg;
  acfg.enabled = true;
  acfg.buffer_size = 6;   // flush on the first 6 of up to 7 in flight
  // One spare dispatch beyond the buffer keeps the pipeline busy while
  // capping staleness at ~1 version (same tuning as the async integration
  // test — full concurrency trained mostly on stale globals and lost
  // accuracy parity on this smoke config).
  acfg.concurrency = 7;
  acfg.staleness_alpha = 0.3;
  env.run.async = acfg;
  const RunResult async = run_algorithm(Algorithm::kAdaptiveFlAsync, env);

  Table t({"engine", "final full (%)", "best full (%)", "sim seconds",
           "params sent"});
  for (const RunResult* r : {&sync, &async}) {
    t.add_row({r->algorithm, Table::fmt_pct(r->final_full_acc),
               Table::fmt_pct(r->best_full_acc()), Table::fmt(r->sim_seconds, 2),
               std::to_string(r->comm.params_sent())});
  }
  std::printf("%s\n", t.to_markdown().c_str());

  // The headline table of the async subsystem: simulated seconds until each
  // accuracy threshold was first reached (RunResult::time_to_acc).
  Table tta({"acc threshold", "sync sim s", "async sim s"});
  for (const TimeToAcc& s : sync.time_to_acc) {
    const char* async_cell = "-";
    std::string async_fmt;
    for (const TimeToAcc& a : async.time_to_acc) {
      if (a.accuracy == s.accuracy) {
        async_fmt = Table::fmt(a.sim_seconds, 2);
        async_cell = async_fmt.c_str();
        break;
      }
    }
    tta.add_row({Table::fmt(s.accuracy, 2), Table::fmt(s.sim_seconds, 2),
                 async_cell});
  }
  std::printf("simulated time to accuracy:\n%s\n", tta.to_markdown().c_str());
  std::printf("trace written to %s — try `afl-insight timeline %s`\n",
              trace_path, trace_path);
  return 0;
}
