// Quickstart: run AdaptiveFL against FedAvg (All-Large) on a small synthetic
// CIFAR-10-like federation with heterogeneous devices, and print the learning
// curves plus the final per-level submodel accuracies.
//
//   ./quickstart [rounds] [num_clients]
//
// Observability (see docs/OBSERVABILITY.md): set AFL_TRACE_JSONL=<path> to
// stream structured trace events, AFL_METRICS_JSONL=<path> to dump per-round
// metrics for every run, AFL_HTTP_PORT=<port> to serve /metrics + /status
// live while the run is in flight.

#include <cstdio>
#include <cstdlib>

#include "core/experiment.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace afl;

  ExperimentConfig cfg;
  cfg.task = TaskKind::kCifar10Like;
  cfg.model = ModelKind::kMiniVgg;
  cfg.partition = Partition::kIid;
  cfg.num_clients = 20;
  cfg.clients_per_round = 5;
  cfg.samples_per_client = 40;
  cfg.test_samples = 400;
  cfg.rounds = 10;
  cfg.eval_every = 1;
  if (argc > 1) cfg.rounds = static_cast<std::size_t>(std::atoi(argv[1]));
  if (argc > 2) cfg.num_clients = static_cast<std::size_t>(std::atoi(argv[2]));

  std::printf("AdaptiveFL quickstart: %zu clients (4:3:3 weak/medium/strong), "
              "%zu rounds, task %s, model %s\n\n",
              cfg.num_clients, cfg.rounds, task_name(cfg.task),
              model_name(cfg.model));

  const ExperimentEnv env = make_env(cfg);
  const RunResult adaptive = run_algorithm(Algorithm::kAdaptiveFl, env);
  const RunResult fedavg = run_algorithm(Algorithm::kAllLarge, env);

  Table curve({"round", "AdaptiveFL full", "AdaptiveFL avg", "All-Large full"});
  for (std::size_t i = 0; i < adaptive.curve.size(); ++i) {
    const RoundRecord& a = adaptive.curve[i];
    const double f = i < fedavg.curve.size() ? fedavg.curve[i].full_acc : 0.0;
    curve.add_row({std::to_string(a.round), Table::fmt_pct(a.full_acc),
                   Table::fmt_pct(a.avg_acc), Table::fmt_pct(f)});
  }
  std::printf("%s\n", curve.to_markdown().c_str());

  Table levels({"submodel", "accuracy (%)"});
  for (const auto& [label, acc] : adaptive.level_acc) {
    levels.add_row({label, Table::fmt_pct(acc)});
  }
  std::printf("AdaptiveFL per-level submodels:\n%s\n", levels.to_markdown().c_str());
  std::printf("AdaptiveFL: full %.2f%%, avg %.2f%%, comm waste %.2f%%, %.1fs\n",
              100 * adaptive.final_full_acc, 100 * adaptive.final_avg_acc,
              100 * adaptive.comm.waste_rate(), adaptive.wall_seconds);
  std::printf("All-Large : full %.2f%% (idealized: ignores device limits), %.1fs\n",
              100 * fedavg.final_full_acc, fedavg.wall_seconds);
  // AFL_METRICS_JSONL is honored centrally by run_algorithm(); nothing to do.
  return 0;
}
