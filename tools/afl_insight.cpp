// afl-insight — offline analysis of AFL_TRACE_JSONL files and persisted
// benchmark snapshots.
//
//   afl-insight summary <trace>            per-run phase/time breakdown
//   afl-insight bytes <trace>              bytes-vs-accuracy view per run
//   afl-insight clients <trace> [--run N]  per-client drill-down
//   afl-insight rounds  <trace> [N]        slowest-N rounds
//   afl-insight timeline <trace>           simulated time-to-accuracy curves
//   afl-insight validate <trace>           lifecycle completeness check
//   afl-insight critical-path <trace>      virtual-clock blame breakdown
//   afl-insight export-chrome <trace>      Chrome trace_event / Perfetto JSON
//   afl-insight diff <a> <b> [thresholds]  run-vs-run regression check
//   afl-insight bench show <snap|dir>      render BENCH_*.json snapshots
//   afl-insight bench diff <base> <cand>   snapshot-vs-snapshot perf gate
//
// A trace may contain several runs (one process running several algorithms);
// records are segmented at `run_start` headers. clients/rounds/diff operate
// on the last run unless --run selects another. `summary` adds a per-shard
// client/byte/straggler breakdown when a run's dispatch records carry the
// hierarchical engine's shard tags (docs/HIERARCHY.md), and exits 1 on a run
// mixing shard-tagged and untagged dispatches (corrupt/interleaved trace). `diff` compares final
// accuracy, round p95 wall time, and total dispatched params of the last run
// in each file (--base-run / --cand-run select others, so one two-run trace
// can diff against itself) and exits 2 when the candidate regresses past the
// thresholds
// (--max-acc-drop, --max-time-ratio, --max-comm-ratio, --max-bytes-ratio —
// the last applies only when the baseline trace carries wire-byte columns —
// plus --max-uplink-bytes-ratio, off by default, gating bytes_returned alone:
// with a ratio below 1 it *demands* uplink savings, which is how the
// compression CI job certifies sparse codecs, see docs/COMPRESSION.md),
// which makes it usable as a CI perf gate. `validate` checks every
// afl.trace.v2 lifecycle record stream for completeness (each dispatch has a
// select phase, exactly one terminal outcome, and time-ordered phases) and
// exits 1 on orphan or out-of-order phases — the CI sanity gate on the
// lifecycle emitters. `critical-path` reconstructs the causal chain that
// determined the run's final simulated instant (obs/critpath.hpp) and prints
// per-phase / per-shard / top-client blame tables. `export-chrome` converts
// lifecycle records into Chrome trace_event JSON (one process per run, one
// track per client) loadable in Perfetto / chrome://tracing (--out writes to
// a file, default stdout). With --tta-acc the diff also
// compares the simulated seconds each run needed to first reach that
// accuracy (from eval_point events; see docs/ASYNC.md) and gates the
// candidate at --max-tta-ratio times the baseline. `timeline` prints the
// (virtual_time, accuracy) evaluation curve of every run side by side plus a
// time-to-threshold table — the sync-vs-async comparison of the paper's
// wall-clock plots. `bench show|diff` consume the afl.bench.v1 snapshots the
// bench binaries write (--out / AFL_BENCH_JSON, see docs/PROFILING.md);
// `bench diff` compares per-section wall time (--max-time-ratio) and cycle
// counts (--max-cycles-ratio) and is the CI benchmark gate. Both accept a
// snapshot file or a directory of BENCH_*.json files (diff matches them by
// file name).
//
// Exit codes: 0 ok, 1 data/schema error, 2 regression, 64 usage error
// (unknown command, missing argument, or nonexistent input file).

#include <dirent.h>
#include <sys/stat.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "obs/critpath.hpp"
#include "obs/json.hpp"
#include "util/table.hpp"

namespace {

using afl::Table;
using Record = std::map<std::string, std::string>;

// Understood trace schemas. v2 added `lifecycle` records, v3 the population
// `churn` records plus departed/went_dark dispatch outcomes (see
// docs/OBSERVABILITY.md); each version is a pure superset of its
// predecessor, so all load identically — newer-record-aware commands just
// find no such records in older traces.
constexpr const char* kSchemas[] = {"afl.trace.v1", "afl.trace.v2",
                                    "afl.trace.v3"};
constexpr const char* kBenchSchema = "afl.bench.v1";

bool schema_supported(const std::string& schema) {
  for (const char* s : kSchemas) {
    if (schema == s) return true;
  }
  return false;
}

// EX_USAGE: the caller got the command line wrong (unknown command, missing
// argument, nonexistent input file) — distinct from 1 (the file exists but
// its content is broken) and 2 (a genuine regression).
constexpr int kExitUsage = 64;

double num(const Record& r, const std::string& key, double fallback = 0.0) {
  const auto it = r.find(key);
  return it == r.end() ? fallback : afl::obs::json_raw_number(it->second, fallback);
}

std::string str(const Record& r, const std::string& key,
                const std::string& fallback = "") {
  const auto it = r.find(key);
  return it == r.end() ? fallback : afl::obs::json_raw_string(it->second, fallback);
}

bool is_kind(const Record& r, const char* kind) { return str(r, "kind") == kind; }

/// One run segment: everything from a run_start header (absent in pre-v1
/// traces) up to the next one.
struct Run {
  Record header;  // empty when the trace predates run_start
  std::vector<Record> events;

  bool has_header() const { return !header.empty(); }
  std::string label() const {
    if (!has_header()) return "(unlabeled)";
    return str(header, "algo", "?") + " seed=" +
           std::to_string(static_cast<long long>(num(header, "seed"))) +
           " threads=" + std::to_string(static_cast<long long>(num(header, "threads")));
  }
};

struct TraceFile {
  std::string path;
  std::vector<Run> runs;
};

/// 0 on success, kExitUsage when the file cannot be opened, 1 when it opens
/// but its content is not a valid trace.
int load_trace(const std::string& path, TraceFile& out) {
  std::ifstream in(path);
  if (!in.good()) {
    std::fprintf(stderr, "afl-insight: cannot open %s\n", path.c_str());
    return kExitUsage;
  }
  out.path = path;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    Record rec = afl::obs::json_object_fields(line);
    if (rec.empty()) {
      std::fprintf(stderr, "afl-insight: %s:%zu is not a JSON object\n",
                   path.c_str(), lineno);
      return 1;
    }
    if (is_kind(rec, "run_start")) {
      const std::string schema = str(rec, "schema");
      if (!schema_supported(schema)) {
        std::fprintf(stderr,
                     "afl-insight: %s declares trace schema \"%s\" but this "
                     "tool understands \"%s\" through \"%s\"\n",
                     path.c_str(), schema.c_str(), kSchemas[0],
                     kSchemas[sizeof(kSchemas) / sizeof(kSchemas[0]) - 1]);
        return 1;
      }
      Run run;
      run.header = std::move(rec);
      out.runs.push_back(std::move(run));
      continue;
    }
    if (out.runs.empty()) out.runs.push_back({});  // headerless prefix
    out.runs.back().events.push_back(std::move(rec));
  }
  if (out.runs.empty()) {
    std::fprintf(stderr, "afl-insight: %s contains no records\n", path.c_str());
    return 1;
  }
  return 0;
}

const Run* pick_run(const TraceFile& file, int index) {
  if (index < 0) return &file.runs.back();
  if (static_cast<std::size_t>(index) >= file.runs.size()) {
    std::fprintf(stderr, "afl-insight: %s has %zu run(s); --run %d is out of range\n",
                 file.path.c_str(), file.runs.size(), index);
    return nullptr;
  }
  return &file.runs[static_cast<std::size_t>(index)];
}

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const std::size_t rank = static_cast<std::size_t>(
      std::max(1.0, std::ceil(p / 100.0 * static_cast<double>(v.size()))));
  return v[std::min(rank, v.size()) - 1];
}

/// Headline numbers of one run, shared by summary and diff.
struct RunStats {
  std::size_t rounds = 0;
  double total_round_ms = 0.0;
  double train_ms = 0.0, aggregate_ms = 0.0, eval_ms = 0.0;
  double p95_round_ms = 0.0;
  double final_acc = 0.0;
  bool has_acc = false;
  double params_sent = 0.0, params_returned = 0.0;
  // Byte-layer totals; present only on transport-backed runs (net traces
  // carry bytes_* columns on round / run_end events, see docs/NET.md).
  bool has_bytes = false;
  double bytes_sent = 0.0, bytes_returned = 0.0;
  double retransmits = 0.0, stragglers = 0.0;
  std::string codec;  // run_start header; empty on transportless runs
  // Uplink codec when it diverges from the shared codec — the sparsifying
  // compression subsystem (docs/COMPRESSION.md) writes the column on
  // run_start/run_end only for split-direction transports.
  std::string uplink_codec;
  std::map<std::string, std::size_t> kind_counts;
  std::map<std::string, std::size_t> dispatch_outcomes;

  // Population churn rollup (afl.trace.v3 `churn` records, docs/POPULATION.md).
  bool has_churn = false;
  double joins = 0.0, departures = 0.0, dark_rounds = 0.0;
  double last_active = 0.0;

  // Per-shard rollup; populated only when dispatch records carry the "shard"
  // tag written by the hierarchical engine (docs/HIERARCHY.md). Within one
  // run the engine either tags every dispatch or none, so a run mixing tagged
  // and untagged dispatches is bad data (two traces interleaved into one
  // segment) — summary refuses it via mixed_shard_tags().
  struct ShardAgg {
    std::set<long long> clients;  // distinct clients this shard served
    std::size_t dispatches = 0, ok = 0, stragglers = 0;
    double bytes_down = 0.0, bytes_up = 0.0;  // 0 on transportless runs
  };
  std::map<long long, ShardAgg> shards;
  std::size_t untagged_dispatches = 0;

  bool mixed_shard_tags() const {
    return !shards.empty() && untagged_dispatches > 0;
  }

  std::size_t deadline_missed() const {
    const auto it = dispatch_outcomes.find("deadline");
    return it == dispatch_outcomes.end() ? 0 : it->second;
  }
};

RunStats run_stats(const Run& run) {
  RunStats s;
  s.codec = str(run.header, "codec");
  s.uplink_codec = str(run.header, "uplink_codec");
  std::vector<double> round_ms;
  bool has_run_end = false;
  for (const Record& r : run.events) {
    const std::string kind = str(r, "kind");
    s.kind_counts[kind]++;
    if (kind == "round") {
      ++s.rounds;
      round_ms.push_back(num(r, "dur_ms"));
      s.total_round_ms += num(r, "dur_ms");
      s.train_ms += num(r, "train_ms");
      s.aggregate_ms += num(r, "aggregate_ms");
      s.eval_ms += num(r, "eval_ms");
      if (!has_run_end) {
        s.params_sent += num(r, "params_sent");
        s.params_returned += num(r, "params_returned");
        if (r.count("bytes_sent") != 0) {
          s.has_bytes = true;
          s.bytes_sent += num(r, "bytes_sent");
          s.bytes_returned += num(r, "bytes_returned");
          s.retransmits += num(r, "retransmits");
          s.stragglers += num(r, "stragglers");
        }
      }
    } else if (kind == "dispatch") {
      const std::string outcome = str(r, "outcome", "?");
      s.dispatch_outcomes[outcome]++;
      if (r.count("shard") != 0) {
        RunStats::ShardAgg& shard =
            s.shards[static_cast<long long>(num(r, "shard"))];
        ++shard.dispatches;
        shard.clients.insert(static_cast<long long>(num(r, "client", -1)));
        if (outcome == "ok") ++shard.ok;
        if (outcome == "deadline") ++shard.stragglers;
        shard.bytes_down += num(r, "bytes_down");
        shard.bytes_up += num(r, "bytes_up");
      } else {
        ++s.untagged_dispatches;
      }
    } else if (kind == "churn") {
      s.has_churn = true;
      s.joins += num(r, "joins");
      s.departures += num(r, "departures");
      s.dark_rounds += num(r, "dark");
      s.last_active = num(r, "active");
    } else if (kind == "evaluate" && !has_run_end) {
      s.final_acc = num(r, "accuracy");
      s.has_acc = true;
    } else if (kind == "run_end") {
      // Authoritative totals when the run completed cleanly.
      has_run_end = true;
      s.final_acc = num(r, "full_acc");
      s.has_acc = true;
      s.params_sent = num(r, "params_sent");
      s.params_returned = num(r, "params_returned");
      if (r.count("bytes_sent") != 0) {
        s.has_bytes = true;
        s.bytes_sent = num(r, "bytes_sent");
        s.bytes_returned = num(r, "bytes_returned");
        s.retransmits = num(r, "retransmits");
        s.stragglers = num(r, "stragglers");
      }
      if (r.count("uplink_codec") != 0) {
        s.uplink_codec = str(r, "uplink_codec");
      }
    }
  }
  s.p95_round_ms = percentile(round_ms, 95.0);
  return s;
}

int cmd_summary(const TraceFile& file) {
  for (std::size_t i = 0; i < file.runs.size(); ++i) {
    const Run& run = file.runs[i];
    const RunStats s = run_stats(run);
    if (s.mixed_shard_tags()) {
      std::fprintf(stderr,
                   "afl-insight: %s run %zu mixes shard-tagged and untagged "
                   "dispatch records (%zu shard(s), %zu untagged dispatch(es))"
                   " — one run cannot come from both engines; trace is "
                   "corrupt\n",
                   file.path.c_str(), i, s.shards.size(),
                   s.untagged_dispatches);
      return 1;
    }
    std::printf("run %zu: %s\n", i, run.label().c_str());
    Table t({"metric", "value"});
    t.add_row({"rounds", std::to_string(s.rounds)});
    t.add_row({"round wall ms (total)", Table::fmt(s.total_round_ms, 1)});
    t.add_row({"round wall ms (p95)", Table::fmt(s.p95_round_ms, 1)});
    const double other =
        s.total_round_ms - s.train_ms - s.aggregate_ms - s.eval_ms;
    auto phase = [&](const char* name, double ms) {
      const double pct = s.total_round_ms > 0 ? 100.0 * ms / s.total_round_ms : 0.0;
      t.add_row({name, Table::fmt(ms, 1) + " (" + Table::fmt(pct, 1) + "%)"});
    };
    phase("  local train ms", s.train_ms);
    phase("  aggregate ms", s.aggregate_ms);
    phase("  evaluate ms", s.eval_ms);
    phase("  other ms", other);
    t.add_row({"final full acc", s.has_acc ? Table::fmt(s.final_acc, 4) : "n/a"});
    t.add_row({"params sent", Table::fmt(s.params_sent, 0)});
    t.add_row({"params returned", Table::fmt(s.params_returned, 0)});
    if (s.has_bytes) {
      const std::string codec = s.codec.empty() ? "?" : s.codec;
      const std::string up_codec =
          s.uplink_codec.empty() ? codec : s.uplink_codec;
      t.add_row({"bytes sent [" + codec + "]", Table::fmt(s.bytes_sent, 0)});
      t.add_row(
          {"bytes returned [" + up_codec + "]", Table::fmt(s.bytes_returned, 0)});
      if (!s.uplink_codec.empty() && s.bytes_returned > 0 &&
          s.params_returned > 0) {
        // Uplink compression ratio vs a dense fp32 uplink of the same
        // committed parameter volume (4 bytes/param). Retransmitted frames
        // count against the wire side, so the ratio is end-to-end honest.
        t.add_row({"uplink compression vs fp32",
                   Table::fmt(s.params_returned * 4.0 / s.bytes_returned, 2) +
                       "x"});
      }
      t.add_row({"retransmits", Table::fmt(s.retransmits, 0)});
      t.add_row({"stragglers (deadline)", Table::fmt(s.stragglers, 0)});
      t.add_row({"deadline-missed clients",
                 std::to_string(s.deadline_missed())});
    }
    if (s.has_churn) {
      // Population columns (afl.trace.v3): fleet size and churn knobs come
      // from the run_start header; join/departure/dark totals from the
      // per-round churn records.
      t.add_row({"pop clients", Table::fmt(num(run.header, "pop_clients"), 0)});
      t.add_row({"pop active (last round)", Table::fmt(s.last_active, 0)});
      t.add_row({"pop joins", Table::fmt(s.joins, 0)});
      t.add_row({"pop departures", Table::fmt(s.departures, 0)});
      t.add_row({"pop dark client-rounds", Table::fmt(s.dark_rounds, 0)});
      if (run.header.count("pop_bw_min") != 0) {
        const double bw_min = num(run.header, "pop_bw_min");
        const double bw_max = num(run.header, "pop_bw_max");
        t.add_row({"pop channel bw spread",
                   Table::fmt(bw_min, 0) + " - " + Table::fmt(bw_max, 0) +
                       " B/s"});
      }
    }
    std::printf("%s", t.to_markdown().c_str());
    std::string kinds;
    for (const auto& [kind, count] : s.kind_counts) {
      kinds += kind + "=" + std::to_string(count) + " ";
    }
    std::printf("events: %s\n", kinds.c_str());
    if (!s.dispatch_outcomes.empty()) {
      std::string outcomes;
      for (const auto& [outcome, count] : s.dispatch_outcomes) {
        outcomes += outcome + "=" + std::to_string(count) + " ";
      }
      std::printf("dispatch outcomes: %s\n", outcomes.c_str());
    }
    if (!s.shards.empty()) {
      std::printf("per-shard breakdown (hierarchical run):\n");
      Table st({"shard", "clients", "dispatches", "ok", "stragglers",
                "bytes down", "bytes up"});
      for (const auto& [id, agg] : s.shards) {
        st.add_row({std::to_string(id), std::to_string(agg.clients.size()),
                    std::to_string(agg.dispatches), std::to_string(agg.ok),
                    std::to_string(agg.stragglers),
                    Table::fmt(agg.bytes_down, 0),
                    Table::fmt(agg.bytes_up, 0)});
      }
      std::printf("%s", st.to_markdown().c_str());
    }
    std::printf("\n");
  }
  return 0;
}

/// Bytes-vs-accuracy view across all runs in one trace: what each codec pair
/// paid on the wire for the accuracy it reached (docs/COMPRESSION.md). The
/// per-run best full accuracy comes from the eval_point curve (falling back
/// to run_end), so async runs whose final flush dips are compared fairly.
int cmd_bytes(const TraceFile& file) {
  Table t({"run", "algo", "codec", "uplink", "bytes down", "bytes up",
           "up vs fp32", "best acc"});
  bool any_bytes = false;
  for (std::size_t i = 0; i < file.runs.size(); ++i) {
    const Run& run = file.runs[i];
    const RunStats s = run_stats(run);
    double best_acc = s.final_acc;
    bool has_acc = s.has_acc;
    for (const Record& r : run.events) {
      if (!is_kind(r, "eval_point")) continue;
      const double acc = num(r, "full_acc");
      if (!has_acc || acc > best_acc) best_acc = acc;
      has_acc = true;
    }
    if (s.has_bytes) any_bytes = true;
    const std::string codec = s.codec.empty() ? "-" : s.codec;
    const std::string uplink = s.uplink_codec.empty() ? codec : s.uplink_codec;
    const bool ratio_known = !s.uplink_codec.empty() && s.bytes_returned > 0 &&
                             s.params_returned > 0;
    t.add_row({std::to_string(i), str(run.header, "algo", "?"), codec, uplink,
               s.has_bytes ? Table::fmt(s.bytes_sent, 0) : "-",
               s.has_bytes ? Table::fmt(s.bytes_returned, 0) : "-",
               ratio_known
                   ? Table::fmt(s.params_returned * 4.0 / s.bytes_returned, 2) +
                         "x"
                   : "-",
               has_acc ? Table::fmt(best_acc, 4) : "n/a"});
  }
  std::printf("bytes vs accuracy:\n%s", t.to_markdown().c_str());
  if (!any_bytes) {
    std::printf("(no wire-byte columns — all runs ran the identity "
                "transport; set AFL_NET_* to get byte accounting)\n");
  }
  return 0;
}

int cmd_clients(const TraceFile& file, int run_index) {
  const Run* run = pick_run(file, run_index);
  if (run == nullptr) return 1;
  struct ClientAgg {
    std::size_t dispatches = 0, ok = 0, no_response = 0, adapt_failed = 0;
    std::size_t lost = 0, deadline = 0;  // transport frame loss / stragglers
    double params_sent = 0.0, params_back = 0.0;
    std::vector<double> train_ms;
  };
  std::map<long long, ClientAgg> clients;
  for (const Record& r : run->events) {
    if (!is_kind(r, "dispatch")) continue;
    ClientAgg& c = clients[static_cast<long long>(num(r, "client", -1))];
    ++c.dispatches;
    c.params_sent += num(r, "params");
    const std::string outcome = str(r, "outcome");
    if (outcome == "ok") {
      ++c.ok;
      c.params_back += num(r, "params_back");
      c.train_ms.push_back(num(r, "train_ms"));
    } else if (outcome == "no_response") {
      ++c.no_response;
    } else if (outcome == "lost_downlink" || outcome == "lost_uplink") {
      ++c.lost;
    } else if (outcome == "deadline") {
      ++c.deadline;
    } else {
      ++c.adapt_failed;
    }
  }
  if (clients.empty()) {
    std::fprintf(stderr, "afl-insight: no dispatch events in %s (run %s)\n",
                 file.path.c_str(), run->label().c_str());
    return 1;
  }
  std::printf("clients of run: %s\n", run->label().c_str());
  Table t({"client", "dispatches", "ok", "no_resp", "no_fit", "lost", "late",
           "train p50 ms", "train p95 ms", "params sent", "params back"});
  for (const auto& [id, c] : clients) {
    t.add_row({std::to_string(id), std::to_string(c.dispatches),
               std::to_string(c.ok), std::to_string(c.no_response),
               std::to_string(c.adapt_failed), std::to_string(c.lost),
               std::to_string(c.deadline),
               Table::fmt(percentile(c.train_ms, 50.0), 2),
               Table::fmt(percentile(c.train_ms, 95.0), 2),
               Table::fmt(c.params_sent, 0), Table::fmt(c.params_back, 0)});
  }
  std::printf("%s", t.to_markdown().c_str());
  return 0;
}

int cmd_rounds(const TraceFile& file, int run_index, std::size_t top_n) {
  const Run* run = pick_run(file, run_index);
  if (run == nullptr) return 1;
  std::vector<const Record*> rounds;
  for (const Record& r : run->events) {
    if (is_kind(r, "round")) rounds.push_back(&r);
  }
  if (rounds.empty()) {
    std::fprintf(stderr, "afl-insight: no round events in %s (run %s)\n",
                 file.path.c_str(), run->label().c_str());
    return 1;
  }
  std::stable_sort(rounds.begin(), rounds.end(),
                   [](const Record* a, const Record* b) {
                     return num(*a, "dur_ms") > num(*b, "dur_ms");
                   });
  if (rounds.size() > top_n) rounds.resize(top_n);
  std::printf("slowest %zu round(s) of run: %s\n", rounds.size(),
              run->label().c_str());
  Table t({"round", "dur ms", "train ms", "aggregate ms", "eval ms", "ok",
           "failed", "waste"});
  for (const Record* r : rounds) {
    t.add_row({Table::fmt(num(*r, "round"), 0), Table::fmt(num(*r, "dur_ms"), 1),
               Table::fmt(num(*r, "train_ms"), 1),
               Table::fmt(num(*r, "aggregate_ms"), 1),
               Table::fmt(num(*r, "eval_ms"), 1),
               Table::fmt(num(*r, "clients_ok"), 0),
               Table::fmt(num(*r, "clients_failed"), 0),
               Table::fmt(num(*r, "round_waste"), 3)});
  }
  std::printf("%s", t.to_markdown().c_str());
  return 0;
}

/// One evaluation sample on the simulated clock. Sync runs emit eval_point
/// at round boundaries, async runs at buffer flushes; virtual_time is the
/// cumulative simulated seconds in both cases, so curves are comparable.
struct EvalPoint {
  double round = 0.0;
  double virtual_time = 0.0;
  double full_acc = 0.0;
  double avg_acc = 0.0;
};

std::vector<EvalPoint> eval_points(const Run& run) {
  std::vector<EvalPoint> points;
  for (const Record& r : run.events) {
    if (!is_kind(r, "eval_point")) continue;
    points.push_back({num(r, "round"), num(r, "virtual_time"),
                      num(r, "full_acc"), num(r, "avg_acc")});
  }
  return points;
}

/// Simulated seconds until the run first evaluated at or above `target`;
/// negative when it never did (or the run carries no eval_point events).
double time_to_accuracy(const std::vector<EvalPoint>& points, double target) {
  for (const EvalPoint& p : points) {
    if (p.full_acc >= target) return p.virtual_time;
  }
  return -1.0;
}

int cmd_timeline(const TraceFile& file, int run_index) {
  std::vector<std::size_t> selected;
  if (run_index >= 0) {
    if (pick_run(file, run_index) == nullptr) return 1;
    selected.push_back(static_cast<std::size_t>(run_index));
  } else {
    for (std::size_t i = 0; i < file.runs.size(); ++i) selected.push_back(i);
  }

  bool any_points = false;
  for (const std::size_t i : selected) {
    const Run& run = file.runs[i];
    const std::vector<EvalPoint> points = eval_points(run);
    std::printf("run %zu: %s\n", i, run.label().c_str());
    if (points.empty()) {
      std::printf("  (no eval_point events — run predates the simulated "
                  "clock or the transport was off)\n\n");
      continue;
    }
    any_points = true;
    Table t({"round", "virtual time s", "full acc", "avg client acc"});
    for (const EvalPoint& p : points) {
      t.add_row({Table::fmt(p.round, 0), Table::fmt(p.virtual_time, 3),
                 Table::fmt(p.full_acc, 4), Table::fmt(p.avg_acc, 4)});
    }
    std::printf("%s\n", t.to_markdown().c_str());
  }
  if (!any_points) {
    std::fprintf(stderr, "afl-insight: no eval_point events in %s\n",
                 file.path.c_str());
    return 1;
  }

  // Cross-run comparison: simulated seconds to each accuracy threshold.
  // "-" marks a threshold the run never reached.
  static constexpr double kThresholds[] = {0.1, 0.15, 0.2, 0.3, 0.4,
                                           0.5, 0.6,  0.7, 0.8, 0.9};
  std::vector<std::string> header{"acc threshold"};
  for (const std::size_t i : selected) {
    header.push_back("run " + std::to_string(i) + " (s)");
  }
  Table t(header);
  for (const double target : kThresholds) {
    std::vector<std::string> row{Table::fmt(target, 2)};
    bool reached = false;
    for (const std::size_t i : selected) {
      const double tta = time_to_accuracy(eval_points(file.runs[i]), target);
      row.push_back(tta < 0 ? "-" : Table::fmt(tta, 3));
      reached = reached || tta >= 0;
    }
    if (reached) t.add_row(row);
  }
  std::printf("simulated time to accuracy:\n%s", t.to_markdown().c_str());
  return 0;
}

// ---------------------------------------------------------------------------
// afl.trace.v2 lifecycle records (engine/lifecycle.hpp, obs/critpath.hpp).

std::vector<afl::obs::LifecycleRecord> lifecycle_records(const Run& run) {
  std::vector<afl::obs::LifecycleRecord> records;
  for (const Record& r : run.events) {
    if (auto rec = afl::obs::parse_lifecycle(r)) records.push_back(*rec);
  }
  return records;
}

/// The run's final simulated instant: run_end's sim_seconds when present,
/// else the last eval_point's virtual_time, else 0 (auto-derive downstream).
double run_anchor(const Run& run) {
  double anchor = 0.0;
  for (const Record& r : run.events) {
    if (is_kind(r, "eval_point")) {
      anchor = std::max(anchor, num(r, "virtual_time"));
    } else if (is_kind(r, "run_end")) {
      const double s = num(r, "sim_seconds");
      if (s > 0.0) anchor = std::max(anchor, s);
    }
  }
  return anchor;
}

/// Lifecycle completeness check. Every dispatch must carry a select phase,
/// exactly one terminal outcome, and time-ordered phases; violations exit 1.
/// Runs without lifecycle records (v1 traces, transportless runs) pass with a
/// note — the gate targets emitters that do write lifecycles.
int cmd_validate(const TraceFile& file) {
  int errors = 0;
  const auto fail = [&](std::size_t run, long long dispatch, const char* what) {
    std::fprintf(stderr, "afl-insight: %s run %zu dispatch %lld: %s\n",
                 file.path.c_str(), run, dispatch, what);
    ++errors;
  };
  for (std::size_t i = 0; i < file.runs.size(); ++i) {
    const std::vector<afl::obs::LifecycleRecord> records =
        lifecycle_records(file.runs[i]);
    if (records.empty()) {
      std::printf("run %zu: %s — no lifecycle records (pre-v2 or "
                  "transportless run)\n",
                  i, file.runs[i].label().c_str());
      continue;
    }
    struct Group {
      bool select = false;
      std::size_t terminals = 0;
      double select_t0 = 0.0, min_t0 = 0.0;
      std::size_t phases = 0;
    };
    std::map<long long, Group> groups;
    for (const afl::obs::LifecycleRecord& r : records) {
      if (r.t1 < r.t0) fail(i, r.dispatch, "phase ends before it starts");
      if (r.dispatch < 0) {
        // Dispatch-less hierarchy barrier records; only ordering applies.
        if (r.level != "root") fail(i, r.dispatch, "dispatch-less record "
                                    "without level=root");
        continue;
      }
      Group& g = groups[r.dispatch];
      if (g.phases == 0) g.min_t0 = r.t0;
      ++g.phases;
      g.min_t0 = std::min(g.min_t0, r.t0);
      if (r.phase == "select") {
        g.select = true;
        g.select_t0 = r.t0;
      }
      if (!r.outcome.empty()) ++g.terminals;
    }
    std::size_t ok = 0;
    for (const auto& [dispatch, g] : groups) {
      bool good = true;
      if (!g.select) {
        fail(i, dispatch, "orphan phases: no select record");
        good = false;
      }
      if (g.terminals == 0) {
        fail(i, dispatch, "incomplete lifecycle: no terminal outcome");
        good = false;
      } else if (g.terminals > 1) {
        fail(i, dispatch, "multiple terminal outcomes");
        good = false;
      }
      if (g.select && g.min_t0 < g.select_t0) {
        fail(i, dispatch, "phase starts before its select instant");
        good = false;
      }
      if (good) ++ok;
    }
    std::printf("run %zu: %s — %zu lifecycle record(s), %zu dispatch(es), "
                "%zu complete\n",
                i, file.runs[i].label().c_str(), records.size(), groups.size(),
                ok);
  }
  if (errors > 0) {
    std::fprintf(stderr, "afl-insight: %d lifecycle violation(s)\n", errors);
    return 1;
  }
  std::printf("lifecycles ok\n");
  return 0;
}

int cmd_critical_path(const TraceFile& file, int run_index, std::size_t top_k) {
  const Run* run = pick_run(file, run_index);
  if (run == nullptr) return 1;
  const std::vector<afl::obs::LifecycleRecord> records = lifecycle_records(*run);
  if (records.empty()) {
    std::fprintf(stderr,
                 "afl-insight: no lifecycle records in %s (run %s) — "
                 "critical-path needs an afl.trace.v2 trace from a "
                 "transport-backed or async run\n",
                 file.path.c_str(), run->label().c_str());
    return 1;
  }
  const afl::obs::CriticalPathResult cp =
      afl::obs::critical_path(records, run_anchor(*run));

  std::printf("critical path of run: %s\n", run->label().c_str());
  std::printf("final simulated time: %.3f s | attributed %.3f s (%.1f%%) | "
              "unattributed %.3f s\n",
              cp.total, cp.attributed,
              cp.total > 0 ? 100.0 * cp.attributed / cp.total : 0.0,
              cp.unattributed);

  // by_phase descending — the headline "where did the time go" table.
  std::vector<std::pair<std::string, double>> phases(cp.by_phase.begin(),
                                                     cp.by_phase.end());
  std::stable_sort(phases.begin(), phases.end(),
                   [](const auto& a, const auto& b) { return a.second > b.second; });
  Table t({"phase", "seconds", "% of run"});
  for (const auto& [phase, seconds] : phases) {
    t.add_row({phase, Table::fmt(seconds, 3),
               Table::fmt(cp.total > 0 ? 100.0 * seconds / cp.total : 0.0, 1)});
  }
  std::printf("%s", t.to_markdown().c_str());

  // Shard table only when the run carried shard tags (hierarchical engine).
  bool tagged = false;
  for (const auto& [shard, seconds] : cp.by_shard) tagged |= shard >= 0;
  if (tagged) {
    Table st({"shard", "seconds on path", "% of run"});
    for (const auto& [shard, seconds] : cp.by_shard) {
      st.add_row({shard < 0 ? std::string("(untagged)") : std::to_string(shard),
                  Table::fmt(seconds, 3),
                  Table::fmt(cp.total > 0 ? 100.0 * seconds / cp.total : 0.0, 1)});
    }
    std::printf("per-shard blame:\n%s", st.to_markdown().c_str());
  }

  std::vector<std::pair<long long, double>> clients(cp.by_client.begin(),
                                                    cp.by_client.end());
  std::stable_sort(clients.begin(), clients.end(),
                   [](const auto& a, const auto& b) { return a.second > b.second; });
  if (clients.size() > top_k) clients.resize(top_k);
  if (!clients.empty()) {
    Table ct({"client", "seconds on path", "% of run"});
    for (const auto& [client, seconds] : clients) {
      ct.add_row({std::to_string(client), Table::fmt(seconds, 3),
                  Table::fmt(cp.total > 0 ? 100.0 * seconds / cp.total : 0.0, 1)});
    }
    std::printf("top %zu client(s) on the path:\n%s", clients.size(),
                ct.to_markdown().c_str());
  }
  return 0;
}

/// Converts lifecycle records to Chrome trace_event JSON: pid = run index,
/// tid = client (root barrier records on a dedicated track), ts/dur in
/// microseconds of the virtual clock. Loadable in Perfetto / chrome://tracing.
int cmd_export_chrome(const TraceFile& file, const std::string& out_path) {
  constexpr long long kRootTid = 1000000;  // past any real client id
  std::string json = "{\"traceEvents\":[";
  bool first = true;
  bool any = false;
  const auto emit = [&](const std::string& event) {
    if (!first) json += ',';
    first = false;
    json += event;
  };
  char buf[256];
  for (std::size_t i = 0; i < file.runs.size(); ++i) {
    const std::vector<afl::obs::LifecycleRecord> records =
        lifecycle_records(file.runs[i]);
    if (records.empty()) continue;
    any = true;
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%zu,"
                  "\"args\":{\"name\":\"run %zu: %s\"}}",
                  i, i,
                  afl::obs::json_escape(file.runs[i].label()).c_str());
    emit(buf);
    std::set<long long> tids;
    for (const afl::obs::LifecycleRecord& r : records) {
      const long long tid = r.dispatch < 0 ? kRootTid : r.client;
      if (tids.insert(tid).second) {
        std::snprintf(buf, sizeof(buf),
                      "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%zu,"
                      "\"tid\":%lld,\"args\":{\"name\":\"%s\"}}",
                      i, tid,
                      tid == kRootTid
                          ? "root barrier"
                          : ("client " + std::to_string(tid)).c_str());
        emit(buf);
      }
      const double ts_us = r.t0 * 1e6;
      const double dur_us = (r.t1 - r.t0) * 1e6;
      std::string args = "{\"dispatch\":" + std::to_string(r.dispatch) +
                         ",\"round\":" + std::to_string(r.round);
      if (r.shard >= 0) args += ",\"shard\":" + std::to_string(r.shard);
      if (r.attempts > 0) args += ",\"attempts\":" + std::to_string(r.attempts);
      if (r.bytes > 0) args += ",\"bytes\":" + std::to_string(r.bytes);
      if (!r.outcome.empty()) {
        args += ",\"outcome\":\"" + afl::obs::json_escape(r.outcome) + "\"";
      }
      args += '}';
      if (dur_us > 0.0) {
        std::snprintf(buf, sizeof(buf),
                      "{\"name\":\"%s\",\"cat\":\"lifecycle\",\"ph\":\"X\","
                      "\"pid\":%zu,\"tid\":%lld,\"ts\":%.3f,\"dur\":%.3f,"
                      "\"args\":",
                      afl::obs::json_escape(r.phase).c_str(), i, tid, ts_us,
                      dur_us);
      } else {
        // Instant markers for the zero-length select/commit/drop points.
        std::snprintf(buf, sizeof(buf),
                      "{\"name\":\"%s\",\"cat\":\"lifecycle\",\"ph\":\"i\","
                      "\"s\":\"t\",\"pid\":%zu,\"tid\":%lld,\"ts\":%.3f,"
                      "\"args\":",
                      afl::obs::json_escape(r.phase).c_str(), i, tid, ts_us);
      }
      emit(buf + args + "}");
    }
  }
  json += "],\"displayTimeUnit\":\"ms\"}";
  if (!any) {
    std::fprintf(stderr,
                 "afl-insight: no lifecycle records in %s — nothing to "
                 "export\n",
                 file.path.c_str());
    return 1;
  }
  if (out_path.empty() || out_path == "-") {
    std::printf("%s\n", json.c_str());
    return 0;
  }
  std::ofstream out(out_path);
  if (!out.good()) {
    std::fprintf(stderr, "afl-insight: cannot write %s\n", out_path.c_str());
    return kExitUsage;
  }
  out << json << '\n';
  out.close();
  std::printf("wrote %zu trace event bytes to %s\n", json.size() + 1,
              out_path.c_str());
  return 0;
}

int cmd_diff(const TraceFile& base, const TraceFile& cand, int base_run,
             int cand_run, double max_acc_drop, double max_time_ratio,
             double max_comm_ratio, double max_bytes_ratio,
             double max_uplink_bytes_ratio, double tta_acc,
             double max_tta_ratio, bool acc_best) {
  const Run* a = pick_run(base, base_run);
  const Run* b = pick_run(cand, cand_run);
  if (a == nullptr || b == nullptr) return 1;
  if (a->has_header() != b->has_header()) {
    std::fprintf(stderr,
                 "afl-insight: cannot diff a headered trace against a "
                 "headerless (pre-v1) one\n");
    return 1;
  }
  const RunStats sa = run_stats(*a);
  const RunStats sb = run_stats(*b);
  const std::vector<EvalPoint> points_a = eval_points(*a);
  const std::vector<EvalPoint> points_b = eval_points(*b);

  // Accuracy gate input: final (run_end) by default, or the best evaluation
  // seen anywhere on the curve with --acc-metric best — the steadier choice
  // for async runs, whose accuracy oscillates between buffer flushes.
  const char* acc_label = acc_best ? "best full acc" : "final full acc";
  double acc_a = sa.final_acc, acc_b = sb.final_acc;
  bool has_acc_a = sa.has_acc, has_acc_b = sb.has_acc;
  if (acc_best) {
    for (const EvalPoint& p : points_a) {
      if (!has_acc_a || p.full_acc > acc_a) acc_a = p.full_acc;
      has_acc_a = true;
    }
    for (const EvalPoint& p : points_b) {
      if (!has_acc_b || p.full_acc > acc_b) acc_b = p.full_acc;
      has_acc_b = true;
    }
  }

  std::printf("baseline : %s (%s)\n", base.path.c_str(), a->label().c_str());
  std::printf("candidate: %s (%s)\n\n", cand.path.c_str(), b->label().c_str());
  Table t({"metric", "baseline", "candidate", "delta"});
  t.add_row({acc_label, has_acc_a ? Table::fmt(acc_a, 4) : "n/a",
             has_acc_b ? Table::fmt(acc_b, 4) : "n/a",
             Table::fmt(acc_b - acc_a, 4)});
  t.add_row({"round p95 ms", Table::fmt(sa.p95_round_ms, 2),
             Table::fmt(sb.p95_round_ms, 2),
             sa.p95_round_ms > 0
                 ? Table::fmt(sb.p95_round_ms / sa.p95_round_ms, 3) + "x"
                 : "n/a"});
  t.add_row({"params sent", Table::fmt(sa.params_sent, 0),
             Table::fmt(sb.params_sent, 0),
             sa.params_sent > 0
                 ? Table::fmt(sb.params_sent / sa.params_sent, 3) + "x"
                 : "n/a"});
  if (sa.has_bytes || sb.has_bytes) {
    const double total_a = sa.bytes_sent + sa.bytes_returned;
    const double total_b = sb.bytes_sent + sb.bytes_returned;
    t.add_row({"bytes on wire", Table::fmt(total_a, 0), Table::fmt(total_b, 0),
               total_a > 0 ? Table::fmt(total_b / total_a, 3) + "x" : "n/a"});
    t.add_row({"uplink bytes", Table::fmt(sa.bytes_returned, 0),
               Table::fmt(sb.bytes_returned, 0),
               sa.bytes_returned > 0
                   ? Table::fmt(sb.bytes_returned / sa.bytes_returned, 3) + "x"
                   : "n/a"});
  }
  double tta_a = -1.0, tta_b = -1.0;
  if (tta_acc > 0) {
    tta_a = time_to_accuracy(points_a, tta_acc);
    tta_b = time_to_accuracy(points_b, tta_acc);
    t.add_row({"sim s to acc " + Table::fmt(tta_acc, 2),
               tta_a < 0 ? "n/a" : Table::fmt(tta_a, 3),
               tta_b < 0 ? "n/a" : Table::fmt(tta_b, 3),
               tta_a > 0 && tta_b >= 0 ? Table::fmt(tta_b / tta_a, 3) + "x"
                                       : "n/a"});
  }
  std::printf("%s\n", t.to_markdown().c_str());

  int regressions = 0;
  if (has_acc_a && has_acc_b && acc_b < acc_a - max_acc_drop) {
    std::printf("REGRESSION: %s dropped %.4f (> %.4f allowed)\n", acc_label,
                acc_a - acc_b, max_acc_drop);
    ++regressions;
  }
  if (sa.p95_round_ms > 0 && sb.p95_round_ms > sa.p95_round_ms * max_time_ratio) {
    std::printf("REGRESSION: round p95 %.2fx baseline (> %.2fx allowed)\n",
                sb.p95_round_ms / sa.p95_round_ms, max_time_ratio);
    ++regressions;
  }
  if (sa.params_sent > 0 && sb.params_sent > sa.params_sent * max_comm_ratio) {
    std::printf("REGRESSION: comm %.2fx baseline (> %.2fx allowed)\n",
                sb.params_sent / sa.params_sent, max_comm_ratio);
    ++regressions;
  }
  // Bytes-on-wire gate: only meaningful when the baseline is a net-backed
  // trace; a candidate that turned the transport on is not a "regression".
  const double bytes_a = sa.bytes_sent + sa.bytes_returned;
  const double bytes_b = sb.bytes_sent + sb.bytes_returned;
  if (sa.has_bytes && bytes_a > 0 && bytes_b > bytes_a * max_bytes_ratio) {
    std::printf("REGRESSION: wire bytes %.2fx baseline (> %.2fx allowed)\n",
                bytes_b / bytes_a, max_bytes_ratio);
    ++regressions;
  }
  // Uplink-only gate, active only when --max-uplink-bytes-ratio was given.
  // The compression CI job uses it with a ratio < 1 to *require* savings:
  // a sparse-uplink candidate must ship at most that fraction of the dense
  // baseline's return bytes (docs/COMPRESSION.md).
  if (max_uplink_bytes_ratio > 0 && sa.has_bytes && sa.bytes_returned > 0 &&
      sb.bytes_returned > sa.bytes_returned * max_uplink_bytes_ratio) {
    std::printf("REGRESSION: uplink bytes %.2fx baseline (> %.2fx allowed)\n",
                sb.bytes_returned / sa.bytes_returned, max_uplink_bytes_ratio);
    ++regressions;
  }
  // Time-to-accuracy gate, active only when --tta-acc was given. Baseline
  // never reaching the target is a usage error (the gate would be vacuous);
  // the candidate never reaching it while the baseline did is a regression.
  if (tta_acc > 0) {
    if (tta_a < 0) {
      std::fprintf(stderr,
                   "afl-insight: baseline never reached accuracy %.2f — "
                   "--tta-acc gate cannot apply\n",
                   tta_acc);
      return 1;
    }
    if (tta_b < 0) {
      std::printf("REGRESSION: candidate never reached accuracy %.2f "
                  "(baseline did at %.3f sim s)\n",
                  tta_acc, tta_a);
      ++regressions;
    } else if (tta_b > tta_a * max_tta_ratio) {
      std::printf(
          "REGRESSION: time-to-acc-%.2f %.2fx baseline (> %.2fx allowed)\n",
          tta_acc, tta_b / tta_a, max_tta_ratio);
      ++regressions;
    }
  }
  if (regressions == 0) {
    std::printf(
        "no regression (acc drop <= %.4f, time <= %.2fx, comm <= %.2fx, "
        "bytes <= %.2fx)\n",
        max_acc_drop, max_time_ratio, max_comm_ratio, max_bytes_ratio);
    return 0;
  }
  return 2;
}

// ---------------------------------------------------------------------------
// Benchmark snapshots (afl.bench.v1, written by the bench binaries — see
// obs/prof/bench_report.hpp and docs/PROFILING.md).

struct BenchSection {
  std::string name;
  double wall_seconds = 0.0;
  std::map<std::string, double> counters;  // cycles, instructions, ipc, ...
  std::map<std::string, double> metrics;   // rounds_per_sec, GFLOP/s, ...
};

struct BenchSnapshot {
  std::string path;
  std::string bench, scale, git;
  std::vector<BenchSection> sections;

  const BenchSection* section(const std::string& name) const {
    for (const BenchSection& s : sections) {
      if (s.name == name) return &s;
    }
    return nullptr;
  }
};

bool is_directory(const std::string& path) {
  struct stat st;
  return stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode);
}

/// Sorted BENCH_*.json file names (not paths) inside `dir`.
std::vector<std::string> bench_files_in(const std::string& dir) {
  std::vector<std::string> names;
  DIR* d = opendir(dir.c_str());
  if (d == nullptr) return names;
  while (struct dirent* e = readdir(d)) {
    const std::string name = e->d_name;
    if (name.rfind("BENCH_", 0) == 0 && name.size() > 5 &&
        name.compare(name.size() - 5, 5, ".json") == 0) {
      names.push_back(name);
    }
  }
  closedir(d);
  std::sort(names.begin(), names.end());
  return names;
}

/// 0 on success, kExitUsage when the file cannot be opened, 1 when it opens
/// but is not a valid afl.bench.v1 snapshot.
int load_bench(const std::string& path, BenchSnapshot& out) {
  std::ifstream in(path);
  if (!in.good()) {
    std::fprintf(stderr, "afl-insight: cannot open %s\n", path.c_str());
    return kExitUsage;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  const Record doc = afl::obs::json_object_fields(text);
  if (doc.empty()) {
    std::fprintf(stderr, "afl-insight: %s is not a JSON object\n", path.c_str());
    return 1;
  }
  const std::string schema = str(doc, "schema");
  if (schema != kBenchSchema) {
    std::fprintf(stderr,
                 "afl-insight: %s declares bench schema \"%s\" but this tool "
                 "understands \"%s\"\n",
                 path.c_str(), schema.c_str(), kBenchSchema);
    return 1;
  }
  out.path = path;
  out.bench = str(doc, "bench", "?");
  out.scale = str(doc, "scale", "?");
  out.git = str(doc, "git", "?");
  const auto sections_it = doc.find("sections");
  if (sections_it == doc.end()) {
    std::fprintf(stderr, "afl-insight: %s has no sections array\n", path.c_str());
    return 1;
  }
  for (const std::string& item :
       afl::obs::json_array_items(sections_it->second)) {
    const Record rec = afl::obs::json_object_fields(item);
    if (rec.empty()) {
      std::fprintf(stderr, "afl-insight: malformed section in %s\n",
                   path.c_str());
      return 1;
    }
    BenchSection s;
    s.name = str(rec, "name", "?");
    s.wall_seconds = num(rec, "wall_seconds");
    for (const char* key : {"cycles", "instructions", "ipc",
                            "cache_references", "cache_misses",
                            "branch_misses"}) {
      const auto it = rec.find(key);
      if (it != rec.end()) {
        s.counters[key] = afl::obs::json_raw_number(it->second, 0.0);
      }
    }
    const auto metrics_it = rec.find("metrics");
    if (metrics_it != rec.end()) {
      for (const auto& [key, raw] :
           afl::obs::json_object_fields(metrics_it->second)) {
        s.metrics[key] = afl::obs::json_raw_number(raw, 0.0);
      }
    }
    out.sections.push_back(std::move(s));
  }
  return 0;
}

/// Expands a file-or-directory argument into snapshot paths. A directory
/// must contain at least one BENCH_*.json.
int resolve_bench_paths(const std::string& arg, std::vector<std::string>& out) {
  if (!is_directory(arg)) {
    out.push_back(arg);
    return 0;
  }
  const std::vector<std::string> names = bench_files_in(arg);
  if (names.empty()) {
    std::fprintf(stderr, "afl-insight: no BENCH_*.json files in %s\n",
                 arg.c_str());
    return kExitUsage;
  }
  for (const std::string& name : names) {
    out.push_back(arg + (arg.back() == '/' ? "" : "/") + name);
  }
  return 0;
}

int cmd_bench_show(const std::vector<std::string>& args) {
  std::vector<std::string> paths;
  for (const std::string& arg : args) {
    if (const int rc = resolve_bench_paths(arg, paths)) return rc;
  }
  for (const std::string& path : paths) {
    BenchSnapshot snap;
    if (const int rc = load_bench(path, snap)) return rc;
    std::printf("%s: bench %s | scale %s | git %s\n", snap.path.c_str(),
                snap.bench.c_str(), snap.scale.c_str(), snap.git.c_str());
    Table t({"section", "wall s", "cycles", "instr", "ipc", "metrics"});
    for (const BenchSection& s : snap.sections) {
      auto counter = [&](const char* key, int digits) {
        const auto it = s.counters.find(key);
        return it == s.counters.end() ? std::string("-")
                                      : Table::fmt(it->second, digits);
      };
      std::string metrics;
      for (const auto& [key, value] : s.metrics) {
        if (!metrics.empty()) metrics += ' ';
        metrics += key + "=" + Table::fmt(value, 3);
      }
      t.add_row({s.name, Table::fmt(s.wall_seconds, 4), counter("cycles", 0),
                 counter("instructions", 0), counter("ipc", 2), metrics});
    }
    std::printf("%s\n", t.to_markdown().c_str());
  }
  return 0;
}

/// Gates candidate sections against same-named baseline sections. Sections
/// only one side has are reported but never gate — bench section sets evolve.
int cmd_bench_diff(const std::string& base_arg, const std::string& cand_arg,
                   double max_time_ratio, double max_cycles_ratio) {
  std::vector<std::string> base_paths, cand_paths;
  if (const int rc = resolve_bench_paths(base_arg, base_paths)) return rc;
  if (const int rc = resolve_bench_paths(cand_arg, cand_paths)) return rc;

  // Directory mode: pair snapshots by file name, skipping unmatched ones.
  std::vector<std::pair<std::string, std::string>> pairs;
  if (is_directory(base_arg) && is_directory(cand_arg)) {
    for (const std::string& bp : base_paths) {
      const std::string name = bp.substr(bp.rfind('/') + 1);
      for (const std::string& cp : cand_paths) {
        if (cp.substr(cp.rfind('/') + 1) == name) {
          pairs.emplace_back(bp, cp);
          break;
        }
      }
    }
    if (pairs.empty()) {
      std::fprintf(stderr,
                   "afl-insight: no snapshot file names in common between %s "
                   "and %s\n",
                   base_arg.c_str(), cand_arg.c_str());
      return kExitUsage;
    }
  } else if (base_paths.size() == 1 && cand_paths.size() == 1) {
    pairs.emplace_back(base_paths[0], cand_paths[0]);
  } else {
    std::fprintf(stderr,
                 "afl-insight: bench diff takes two files or two "
                 "directories\n");
    return kExitUsage;
  }

  int regressions = 0;
  for (const auto& [base_path, cand_path] : pairs) {
    BenchSnapshot base, cand;
    if (const int rc = load_bench(base_path, base)) return rc;
    if (const int rc = load_bench(cand_path, cand)) return rc;
    std::printf("baseline : %s (git %s)\n", base.path.c_str(), base.git.c_str());
    std::printf("candidate: %s (git %s)\n", cand.path.c_str(), cand.git.c_str());
    if (base.scale != cand.scale) {
      std::printf("note: scale differs (%s vs %s) — ratios may be meaningless\n",
                  base.scale.c_str(), cand.scale.c_str());
    }
    Table t({"section", "base wall s", "cand wall s", "wall", "cycles"});
    for (const BenchSection& b : base.sections) {
      const BenchSection* c = cand.section(b.name);
      if (c == nullptr) {
        t.add_row({b.name, Table::fmt(b.wall_seconds, 4), "(missing)", "-", "-"});
        continue;
      }
      std::string wall = "n/a", cycles = "-";
      if (b.wall_seconds > 0) {
        const double ratio = c->wall_seconds / b.wall_seconds;
        wall = Table::fmt(ratio, 3) + "x";
        if (ratio > max_time_ratio) {
          std::printf("REGRESSION: %s wall %.2fx baseline (> %.2fx allowed)\n",
                      b.name.c_str(), ratio, max_time_ratio);
          ++regressions;
        }
      }
      const auto bc = b.counters.find("cycles");
      const auto cc = c->counters.find("cycles");
      if (bc != b.counters.end() && cc != c->counters.end() &&
          bc->second > 0) {
        const double ratio = cc->second / bc->second;
        cycles = Table::fmt(ratio, 3) + "x";
        if (ratio > max_cycles_ratio) {
          std::printf("REGRESSION: %s cycles %.2fx baseline (> %.2fx allowed)\n",
                      b.name.c_str(), ratio, max_cycles_ratio);
          ++regressions;
        }
      }
      t.add_row({b.name, Table::fmt(b.wall_seconds, 4),
                 Table::fmt(c->wall_seconds, 4), wall, cycles});
    }
    for (const BenchSection& c : cand.sections) {
      if (base.section(c.name) == nullptr) {
        t.add_row({c.name, "(new)", Table::fmt(c.wall_seconds, 4), "-", "-"});
      }
    }
    std::printf("%s\n", t.to_markdown().c_str());
  }
  if (regressions == 0) {
    std::printf("no bench regression (wall <= %.2fx, cycles <= %.2fx)\n",
                max_time_ratio, max_cycles_ratio);
    return 0;
  }
  return 2;
}

int usage() {
  std::fprintf(stderr,
               "usage: afl-insight <command> [args]\n"
               "  summary <trace>                     per-run phase/time breakdown\n"
               "  bytes <trace>                       bytes-vs-accuracy view per run\n"
               "  clients <trace> [--run N]           per-client drill-down\n"
               "  rounds <trace> [N] [--run N]        slowest-N rounds (default 5)\n"
               "  timeline <trace> [--run N]          simulated time-to-accuracy curves\n"
               "  validate <trace>                    lifecycle completeness check (exit 1 on orphans)\n"
               "  critical-path <trace> [--run N]     virtual-clock blame breakdown\n"
               "       [--top K]                      clients shown on the path (5)\n"
               "  export-chrome <trace> [--out FILE]  Chrome trace_event JSON (Perfetto; stdout default)\n"
               "  diff <baseline> <candidate>         regression check (exit 2 on regression)\n"
               "       [--max-acc-drop X]             allowed absolute accuracy drop (0.02)\n"
               "       [--acc-metric final|best]      accuracy gated: run_end vs curve max (final)\n"
               "       [--max-time-ratio X]           allowed round-p95 ratio (1.50)\n"
               "       [--max-comm-ratio X]           allowed params-sent ratio (1.10)\n"
               "       [--max-bytes-ratio X]          allowed wire-bytes ratio (1.10)\n"
               "       [--max-uplink-bytes-ratio X]   allowed uplink-bytes ratio (off; <1 demands savings)\n"
               "       [--tta-acc X]                  gate simulated time to accuracy X (off)\n"
               "       [--max-tta-ratio X]            allowed time-to-acc ratio (1.00)\n"
               "       [--base-run N] [--cand-run N]  run index inside each trace (last)\n"
               "  bench show <snapshot|dir>...        render BENCH_*.json snapshots\n"
               "  bench diff <base> <cand>            snapshot perf gate (exit 2 on regression)\n"
               "       [--max-time-ratio X]           allowed per-section wall ratio (1.50)\n"
               "       [--max-cycles-ratio X]         allowed per-section cycles ratio (1.50)\n"
               "exit codes: 0 ok, 1 bad data, 2 regression, 64 usage error\n");
  return kExitUsage;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string cmd = argv[1];

  if (cmd == "bench") {
    // Own dispatch: positionals are snapshots/directories, not traces.
    const std::string sub = argv[2];
    std::vector<std::string> rest(argv + 3, argv + argc);
    double max_time_ratio = 1.50, max_cycles_ratio = 1.50;
    std::vector<std::string> positional;
    for (std::size_t i = 0; i < rest.size(); ++i) {
      if (rest[i] == "--max-time-ratio" && i + 1 < rest.size()) {
        max_time_ratio = std::atof(rest[++i].c_str());
      } else if (rest[i] == "--max-cycles-ratio" && i + 1 < rest.size()) {
        max_cycles_ratio = std::atof(rest[++i].c_str());
      } else if (rest[i].rfind("--", 0) == 0) {
        std::fprintf(stderr, "afl-insight: unknown flag %s\n", rest[i].c_str());
        return usage();
      } else {
        positional.push_back(rest[i]);
      }
    }
    if (sub == "show") {
      if (positional.empty()) return usage();
      return cmd_bench_show(positional);
    }
    if (sub == "diff") {
      if (positional.size() != 2) return usage();
      return cmd_bench_diff(positional[0], positional[1], max_time_ratio,
                            max_cycles_ratio);
    }
    std::fprintf(stderr, "afl-insight: unknown bench subcommand \"%s\"\n",
                 sub.c_str());
    return usage();
  }

  // Common flags/positionals after the command + first path.
  std::vector<std::string> args(argv + 2, argv + argc);
  int run_index = -1;                     // default: last run
  int base_run = -1, cand_run = -1;       // diff-side run selectors
  double max_acc_drop = 0.02, max_time_ratio = 1.50, max_comm_ratio = 1.10;
  double max_bytes_ratio = 1.10;
  double max_uplink_bytes_ratio = 0.0;  // uplink gate off until the flag
  double tta_acc = 0.0, max_tta_ratio = 1.00;  // tta gate off until --tta-acc
  bool acc_best = false;    // diff --acc-metric best
  int top_k = 5;            // critical-path client rows
  std::string out_path;     // export-chrome destination; empty = stdout
  std::vector<std::string> positional;
  for (std::size_t i = 0; i < args.size(); ++i) {
    auto flag_value = [&](double& out) {
      if (i + 1 >= args.size()) return false;
      out = std::atof(args[++i].c_str());
      return true;
    };
    if (args[i] == "--run") {
      if (i + 1 >= args.size()) return usage();
      run_index = std::atoi(args[++i].c_str());
    } else if (args[i] == "--base-run") {
      if (i + 1 >= args.size()) return usage();
      base_run = std::atoi(args[++i].c_str());
    } else if (args[i] == "--cand-run") {
      if (i + 1 >= args.size()) return usage();
      cand_run = std::atoi(args[++i].c_str());
    } else if (args[i] == "--max-acc-drop") {
      if (!flag_value(max_acc_drop)) return usage();
    } else if (args[i] == "--max-time-ratio") {
      if (!flag_value(max_time_ratio)) return usage();
    } else if (args[i] == "--max-comm-ratio") {
      if (!flag_value(max_comm_ratio)) return usage();
    } else if (args[i] == "--max-bytes-ratio") {
      if (!flag_value(max_bytes_ratio)) return usage();
    } else if (args[i] == "--max-uplink-bytes-ratio") {
      if (!flag_value(max_uplink_bytes_ratio)) return usage();
    } else if (args[i] == "--tta-acc") {
      if (!flag_value(tta_acc)) return usage();
    } else if (args[i] == "--max-tta-ratio") {
      if (!flag_value(max_tta_ratio)) return usage();
    } else if (args[i] == "--acc-metric") {
      if (i + 1 >= args.size()) return usage();
      const std::string metric = args[++i];
      if (metric != "final" && metric != "best") return usage();
      acc_best = metric == "best";
    } else if (args[i] == "--top") {
      if (i + 1 >= args.size()) return usage();
      top_k = std::max(1, std::atoi(args[++i].c_str()));
    } else if (args[i] == "--out") {
      if (i + 1 >= args.size()) return usage();
      out_path = args[++i];
    } else {
      positional.push_back(args[i]);
    }
  }
  if (positional.empty()) return usage();
  if (cmd != "summary" && cmd != "bytes" && cmd != "clients" &&
      cmd != "rounds" && cmd != "timeline" && cmd != "validate" &&
      cmd != "critical-path" && cmd != "export-chrome" && cmd != "diff") {
    std::fprintf(stderr, "afl-insight: unknown command \"%s\"\n", cmd.c_str());
    return usage();
  }

  TraceFile file;
  if (const int rc = load_trace(positional[0], file)) return rc;

  if (cmd == "summary") return cmd_summary(file);
  if (cmd == "bytes") return cmd_bytes(file);
  if (cmd == "clients") return cmd_clients(file, run_index);
  if (cmd == "rounds") {
    std::size_t top_n = 5;
    if (positional.size() > 1) {
      top_n = static_cast<std::size_t>(std::max(1, std::atoi(positional[1].c_str())));
    }
    return cmd_rounds(file, run_index, top_n);
  }
  if (cmd == "timeline") return cmd_timeline(file, run_index);
  if (cmd == "validate") return cmd_validate(file);
  if (cmd == "critical-path") {
    return cmd_critical_path(file, run_index, static_cast<std::size_t>(top_k));
  }
  if (cmd == "export-chrome") return cmd_export_chrome(file, out_path);
  // diff
  if (positional.size() != 2) return usage();
  TraceFile cand;
  if (const int rc = load_trace(positional[1], cand)) return rc;
  return cmd_diff(file, cand, base_run, cand_run, max_acc_drop,
                  max_time_ratio, max_comm_ratio, max_bytes_ratio,
                  max_uplink_bytes_ratio, tta_acc, max_tta_ratio, acc_best);
}
